#include "simmpi/fault.hpp"

#include "util/random.hpp"

namespace g500::simmpi {

FaultPlan& FaultPlan::crash(int rank, std::uint64_t at_call) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.rank = rank;
  event.at_call = at_call;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::stall(int rank, std::uint64_t at_call, double seconds) {
  FaultEvent event;
  event.kind = FaultKind::kStall;
  event.rank = rank;
  event.at_call = at_call;
  event.stall_seconds = seconds;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::corrupt(int rank, std::uint64_t at_alltoallv, int src,
                              std::uint64_t bit) {
  FaultEvent event;
  event.kind = FaultKind::kCorrupt;
  event.rank = rank;
  event.at_call = at_alltoallv;
  event.corrupt_src = src;
  event.corrupt_bit = bit;
  events_.push_back(event);
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int num_ranks, int crashes,
                            int corruptions, int stalls,
                            std::uint64_t horizon) {
  if (num_ranks < 1) {
    throw std::invalid_argument("FaultPlan::random: num_ranks must be >= 1");
  }
  if (horizon < 1) horizon = 1;
  util::SplitMix64 rng(seed);
  const auto ranks = static_cast<std::uint64_t>(num_ranks);
  FaultPlan plan;
  for (int i = 0; i < crashes; ++i) {
    plan.crash(static_cast<int>(rng.next_below(ranks)),
               1 + rng.next_below(horizon));
  }
  for (int i = 0; i < corruptions; ++i) {
    plan.corrupt(static_cast<int>(rng.next_below(ranks)),
                 1 + rng.next_below(horizon), /*src=*/-1,
                 rng.next_below(1u << 20));
  }
  for (int i = 0; i < stalls; ++i) {
    plan.stall(static_cast<int>(rng.next_below(ranks)),
               1 + rng.next_below(horizon),
               1e-3 * static_cast<double>(1 + rng.next_below(1000)));
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, int num_ranks)
    : plan_(std::move(plan)),
      counters_(static_cast<std::size_t>(num_ranks)),
      fired_(plan_.events().size(), 0) {}

double FaultInjector::on_collective(int rank, CollectiveKind kind) {
  RankCounters& mine = counters_[static_cast<std::size_t>(rank)];
  ++mine.calls;
  if (kind == CollectiveKind::kAlltoallv) ++mine.alltoallv_calls;

  double stall = 0.0;
  const auto& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.rank != rank || fired_[i] != 0) continue;
    if (event.kind == FaultKind::kStall && event.at_call == mine.calls) {
      fired_[i] = 1;
      fired_total_.fetch_add(1, std::memory_order_relaxed);
      stall += event.stall_seconds;
    }
  }
  // Crashes fire after stalls so a stall and a crash planned at the same
  // call both take effect (the stall is charged, then the rank dies).
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.rank != rank || fired_[i] != 0) continue;
    if (event.kind == FaultKind::kCrash && event.at_call <= mine.calls) {
      fired_[i] = 1;
      fired_total_.fetch_add(1, std::memory_order_relaxed);
      throw InjectedCrashError(rank, mine.calls);
    }
  }
  return stall;
}

bool FaultInjector::corrupt_payload(int rank, int src, void* data,
                                    std::size_t bytes) {
  if (bytes == 0) return false;
  const RankCounters& mine = counters_[static_cast<std::size_t>(rank)];
  bool corrupted = false;
  const auto& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.kind != FaultKind::kCorrupt || event.rank != rank ||
        fired_[i] != 0) {
      continue;
    }
    if (event.at_call != mine.alltoallv_calls) continue;
    if (event.corrupt_src >= 0 && event.corrupt_src != src) continue;
    fired_[i] = 1;
    fired_total_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t bit = event.corrupt_bit % (bytes * 8);
    static_cast<unsigned char*>(data)[bit / 8] ^=
        static_cast<unsigned char>(1u << (bit % 8));
    corrupted = true;
  }
  return corrupted;
}

}  // namespace g500::simmpi
