// Communication statistics recorded by the simulated message-passing runtime.
//
// The record-run analysis in the paper hinges on *how much* traffic each
// optimization removes, so the runtime counts every logical byte and message
// that would cross the network in a real MPI execution.  Intra-rank traffic
// (src == dst) is excluded: it never touches the interconnect.
#pragma once

#include <cstdint>
#include <vector>

namespace g500::simmpi {

/// Counters for one class of collective (alltoallv, allreduce, ...).
struct CollectiveStats {
  std::uint64_t calls = 0;     ///< number of invocations
  std::uint64_t bytes = 0;     ///< payload bytes leaving this rank
  std::uint64_t messages = 0;  ///< non-empty (src,dst) pairs, src != dst

  void merge(const CollectiveStats& other) noexcept {
    calls += other.calls;
    bytes += other.bytes;
    messages += other.messages;
  }
};

/// Per-rank communication record.  World aggregates these after a run.
struct CommStats {
  CollectiveStats alltoallv;
  CollectiveStats allreduce;
  CollectiveStats allgather;
  CollectiveStats broadcast;
  /// Aggregated point-to-point traffic (Aggregator flushes and quiescence
  /// control parcels).  Deliberately tallied apart from the collective
  /// counters: replay prices streamed sends (no barrier, overlappable)
  /// differently from synchronized rounds, so conflating them would skew
  /// both.  calls = parcels deposited to remote ranks, one wire message
  /// each; self-deposits are excluded like all intra-rank traffic.
  CollectiveStats p2p;
  /// Flush-trigger split of the aggregator's deposits: buffer reached
  /// capacity vs aged out (or was idle-drained).  Control parcels count in
  /// neither.  Self-directed flushes are counted here even though they put
  /// nothing on the wire — the split diagnoses the flush policy, not the
  /// interconnect.
  std::uint64_t p2p_flush_capacity = 0;
  std::uint64_t p2p_flush_timeout = 0;
  std::uint64_t barriers = 0;

  /// Virtual delay charged to this rank by injected stall faults (see
  /// simmpi/fault.hpp).  Not slept — recorded for the cost model, which
  /// treats it as slow-node time on the critical path.
  double stall_seconds = 0.0;

  /// bytes_to[d]: payload bytes this rank addressed to rank d (alltoallv
  /// only — the traffic matrix the topology cost model maps onto links).
  std::vector<std::uint64_t> bytes_to;

  void resize(std::size_t num_ranks) { bytes_to.assign(num_ranks, 0); }

  void clear() {
    alltoallv = {};
    allreduce = {};
    allgather = {};
    broadcast = {};
    p2p = {};
    p2p_flush_capacity = 0;
    p2p_flush_timeout = 0;
    barriers = 0;
    stall_seconds = 0.0;
    for (auto& b : bytes_to) b = 0;
  }

  void merge(const CommStats& other);

  /// Total payload bytes this rank put on the (simulated) wire.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return alltoallv.bytes + allreduce.bytes + allgather.bytes +
           broadcast.bytes + p2p.bytes;
  }

  /// Total point-to-point messages implied by the collectives plus the
  /// aggregated async stream.
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return alltoallv.messages + allreduce.messages + allgather.messages +
           broadcast.messages + p2p.messages;
  }

  /// Number of global synchronization rounds (each collective costs one).
  /// Aggregated p2p sends never synchronize, so they add no rounds — the
  /// async engine's whole point.
  [[nodiscard]] std::uint64_t rounds() const noexcept {
    return alltoallv.calls + allreduce.calls + allgather.calls +
           broadcast.calls + barriers;
  }
};

}  // namespace g500::simmpi
