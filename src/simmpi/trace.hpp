// Collective-sequence tracing.
//
// When enabled on a World, every rank records one event per collective it
// executes (kind + payload bytes it contributed).  Because the programming
// model is SPMD with matched collectives, the per-rank sequences align
// one-to-one and can be merged into a machine-wide round log — the input
// the model::replay_trace analysis prices on a target interconnect,
// round by round (the post-mortem methodology used to attribute record-run
// time to phases).
#pragma once

#include <cstdint>
#include <vector>

namespace g500::simmpi {

enum class CollectiveKind : std::uint8_t {
  kBarrier,
  kAlltoallv,
  kAllreduce,
  kAllgather,
  kBroadcast,
  /// Asynchronous aggregated point-to-point (one flushed parcel).  Never
  /// appears in the collective round log — p2p sends are unmatched across
  /// ranks — but shares the kind enum so the fault injector and the replay
  /// breakdown can name it.
  kPoint2Point,
};

[[nodiscard]] constexpr const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBarrier:
      return "barrier";
    case CollectiveKind::kAlltoallv:
      return "alltoallv";
    case CollectiveKind::kAllreduce:
      return "allreduce";
    case CollectiveKind::kAllgather:
      return "allgather";
    case CollectiveKind::kBroadcast:
      return "broadcast";
    case CollectiveKind::kPoint2Point:
      return "p2p";
  }
  return "?";
}

/// One rank's record of one collective.
struct TraceEvent {
  CollectiveKind kind;
  std::uint64_t bytes;         ///< payload this rank contributed
  double stall_seconds = 0.0;  ///< injected stall charged at this round
};

/// One merged machine-wide round.
struct TraceRound {
  CollectiveKind kind;
  std::uint64_t total_bytes = 0;     ///< summed over ranks
  std::uint64_t max_rank_bytes = 0;  ///< busiest contributor
  double stall_seconds = 0.0;        ///< slowest rank's injected stall
};

/// Machine-wide summary of the asynchronous point-to-point stream, built
/// from the per-rank CommStats by World::p2p_summary().  Parcels are not
/// rounds — they never synchronize ranks — so the replay model prices this
/// alongside the collective round log instead of inside it
/// (model::replay_async_trace).
struct P2pSummary {
  std::uint64_t flushes = 0;         ///< remote parcels deposited
  std::uint64_t messages = 0;        ///< same as flushes (1 wire msg each)
  std::uint64_t bytes = 0;           ///< payload bytes across all ranks
  std::uint64_t max_rank_bytes = 0;  ///< busiest sender's total
  std::uint64_t flush_capacity = 0;  ///< capacity-triggered flushes
  std::uint64_t flush_timeout = 0;   ///< timeout / idle-drain flushes
};

}  // namespace g500::simmpi
