// Collective-sequence tracing.
//
// When enabled on a World, every rank records one event per collective it
// executes (kind + payload bytes it contributed).  Because the programming
// model is SPMD with matched collectives, the per-rank sequences align
// one-to-one and can be merged into a machine-wide round log — the input
// the model::replay_trace analysis prices on a target interconnect,
// round by round (the post-mortem methodology used to attribute record-run
// time to phases).
#pragma once

#include <cstdint>
#include <vector>

namespace g500::simmpi {

enum class CollectiveKind : std::uint8_t {
  kBarrier,
  kAlltoallv,
  kAllreduce,
  kAllgather,
  kBroadcast,
};

[[nodiscard]] constexpr const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBarrier:
      return "barrier";
    case CollectiveKind::kAlltoallv:
      return "alltoallv";
    case CollectiveKind::kAllreduce:
      return "allreduce";
    case CollectiveKind::kAllgather:
      return "allgather";
    case CollectiveKind::kBroadcast:
      return "broadcast";
  }
  return "?";
}

/// One rank's record of one collective.
struct TraceEvent {
  CollectiveKind kind;
  std::uint64_t bytes;         ///< payload this rank contributed
  double stall_seconds = 0.0;  ///< injected stall charged at this round
};

/// One merged machine-wide round.
struct TraceRound {
  CollectiveKind kind;
  std::uint64_t total_bytes = 0;     ///< summed over ranks
  std::uint64_t max_rank_bytes = 0;  ///< busiest contributor
  double stall_seconds = 0.0;        ///< slowest rank's injected stall
};

}  // namespace g500::simmpi
