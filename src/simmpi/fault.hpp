// Deterministic fault injection for the simulated runtime.
//
// The record run this repo models occupies ~107k nodes for hours; at that
// scale ranks die, payloads corrupt and nodes stall mid-run, so resilience
// machinery has to be testable *before* the machine misbehaves.  A
// FaultPlan is a seeded, reproducible schedule of faults expressed in the
// only clock every rank shares: its own collective-call sequence.  The
// World installs the plan (World::set_fault_plan) and every Comm collective
// consults the injector:
//
//   * kCrash   — the victim rank throws InjectedCrashError at the entry of
//                its n-th collective, before touching the wire.  Peers
//                unwind with AbortedError through the usual abort path.
//   * kCorrupt — bits are flipped in an alltoallv payload after the sender
//                computed its checksum (i.e. "on the wire").  With
//                World::enable_checksums the receiver detects the damage
//                and every rank of the exchange raises CorruptionError;
//                without checksums the corruption is silent, as on a real
//                machine.
//   * kStall   — the victim is charged `stall_seconds` of virtual delay at
//                its n-th collective, recorded in CommStats::stall_seconds
//                and the trace (model::replay_trace prices it), not slept.
//
// Counters are monotonic over the injector's lifetime and events fire once,
// so a retried World::run naturally proceeds past a consumed fault — the
// property the checkpoint/restart layer in core/ relies on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "simmpi/trace.hpp"

namespace g500::simmpi {

/// Thrown on every rank of an alltoallv whose payload failed checksum
/// verification.  Distinct from AbortedError: the program did not merely
/// observe a peer's death, it observed data damage.
class CorruptionError : public std::runtime_error {
 public:
  explicit CorruptionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown in the victim rank when a planned crash fires.
class InjectedCrashError : public std::runtime_error {
 public:
  InjectedCrashError(int rank, std::uint64_t call_index)
      : std::runtime_error("simmpi: injected crash of rank " +
                           std::to_string(rank) + " at its collective #" +
                           std::to_string(call_index)),
        rank_(rank),
        call_index_(call_index) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint64_t call_index() const noexcept {
    return call_index_;
  }

 private:
  int rank_;
  std::uint64_t call_index_;
};

enum class FaultKind : std::uint8_t { kCrash, kCorrupt, kStall };

/// One planned fault.  `at_call` is 1-based in the victim's own collective
/// sequence (kCorrupt counts alltoallv calls only, the only collective that
/// carries bulk payload).
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int rank = 0;
  std::uint64_t at_call = 1;
  double stall_seconds = 0.0;   ///< kStall: virtual delay to record
  int corrupt_src = -1;         ///< kCorrupt: damage payload from this
                                ///< source (-1 = first non-empty remote)
  std::uint64_t corrupt_bit = 0;///< kCorrupt: bit to flip (mod payload size)
};

/// A reproducible schedule of faults: either scripted via the fluent
/// builders or generated from a seed.  Value type; install a copy per
/// World.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& crash(int rank, std::uint64_t at_call);
  FaultPlan& stall(int rank, std::uint64_t at_call, double seconds);
  FaultPlan& corrupt(int rank, std::uint64_t at_alltoallv, int src = -1,
                     std::uint64_t bit = 0);

  /// Seeded random schedule: `crashes`/`corruptions`/`stalls` events spread
  /// uniformly over each victim's first `horizon` collectives.  The same
  /// (seed, num_ranks, counts, horizon) always yields the same plan.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, int num_ranks,
                                        int crashes, int corruptions,
                                        int stalls, std::uint64_t horizon);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Runtime state of an installed plan: per-rank collective counters plus
/// one-shot latches per event.  Each counter/latch is touched only by its
/// victim's thread, so no locking is needed beyond the fired total.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int num_ranks);

  /// Hook at the entry of every collective of `rank`.  Returns the stall
  /// seconds to charge (usually 0); throws InjectedCrashError when the
  /// plan kills this rank here.
  double on_collective(int rank, CollectiveKind kind);

  /// Hook on each received alltoallv payload: flips bits in
  /// [data, data + bytes) if the plan corrupts this (rank, src) here.
  /// Returns true when the payload was damaged.
  bool corrupt_payload(int rank, int src, void* data, std::size_t bytes);

  /// Collectives rank `rank` has executed under this injector.
  [[nodiscard]] std::uint64_t collective_calls(int rank) const {
    return counters_[static_cast<std::size_t>(rank)].calls;
  }
  /// Alltoallv calls rank `rank` has executed under this injector.
  [[nodiscard]] std::uint64_t alltoallv_calls(int rank) const {
    return counters_[static_cast<std::size_t>(rank)].alltoallv_calls;
  }
  /// Total events that have fired so far.
  [[nodiscard]] std::uint64_t events_fired() const noexcept {
    return fired_total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Padded so concurrent per-rank updates never share a cache line.
  struct alignas(64) RankCounters {
    std::uint64_t calls = 0;
    std::uint64_t alltoallv_calls = 0;
  };

  FaultPlan plan_;
  std::vector<RankCounters> counters_;
  std::vector<std::uint8_t> fired_;  // one latch per plan event
  std::atomic<std::uint64_t> fired_total_{0};
};

}  // namespace g500::simmpi
