#include "simmpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

namespace g500::simmpi {

void CommStats::merge(const CommStats& other) {
  alltoallv.merge(other.alltoallv);
  allreduce.merge(other.allreduce);
  allgather.merge(other.allgather);
  broadcast.merge(other.broadcast);
  p2p.merge(other.p2p);
  p2p_flush_capacity += other.p2p_flush_capacity;
  p2p_flush_timeout += other.p2p_flush_timeout;
  barriers += other.barriers;
  stall_seconds += other.stall_seconds;
  if (other.bytes_to.size() > bytes_to.size()) {
    bytes_to.resize(other.bytes_to.size(), 0);
  }
  for (std::size_t i = 0; i < other.bytes_to.size(); ++i) {
    bytes_to[i] += other.bytes_to[i];
  }
}

World::World(int num_ranks) {
  if (num_ranks < 1) {
    throw std::invalid_argument("simmpi::World needs at least one rank");
  }
  comms_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    comms_.emplace_back(new Comm(*this, r));
    comms_.back()->stats_.resize(static_cast<std::size_t>(num_ranks));
  }
  slots_.assign(static_cast<std::size_t>(num_ranks), nullptr);
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    mailboxes_.emplace_back(std::make_unique<Mailbox>());
  }
}

void World::sync() {
  barrier_->arrive_and_wait();
  if (failed_.load(std::memory_order_acquire)) throw AbortedError{};
}

void Comm::barrier() {
  begin_collective(CollectiveKind::kBarrier);
  ++stats_.barriers;
  record(CollectiveKind::kBarrier, 0);
  world_->sync();
}

void Comm::fail(std::exception_ptr ep) {
  world_->mark_failed(ep);
  std::rethrow_exception(ep);
}

void Comm::begin_collective(CollectiveKind kind) {
  FaultInjector* const injector = world_->injector_.get();
  if (injector == nullptr) return;
  double stall = 0.0;
  try {
    stall = injector->on_collective(rank_, kind);
  } catch (...) {
    // An injected crash must abort the peers even if user code catches the
    // InjectedCrashError — the victim never reaches the collective it was
    // counted for, so its peers would otherwise pair mismatched calls.
    fail(std::current_exception());
  }
  if (stall > 0.0) {
    stats_.stall_seconds += stall;
    stall_pending_ += stall;
  }
}

void Comm::send_parcel(int dst, int tag, const void* data, std::size_t bytes,
                       SendReason reason) {
  if (dst < 0 || dst >= size()) {
    fail(std::make_exception_ptr(
        std::invalid_argument("send_parcel: bad destination rank")));
  }
  if (world_->failed_.load(std::memory_order_acquire)) throw AbortedError{};
  // Fault hook: planned stalls/crashes can target a flush like any
  // collective entry.  Parcels are never recorded in the collective trace —
  // they are unmatched across ranks, and merged_trace() requires alignment.
  begin_collective(CollectiveKind::kPoint2Point);
  switch (reason) {
    case SendReason::kCapacityFlush:
      ++stats_.p2p_flush_capacity;
      break;
    case SendReason::kTimeoutFlush:
      ++stats_.p2p_flush_timeout;
      break;
    case SendReason::kManualFlush:
    case SendReason::kControl:
      break;
  }
  if (dst != rank_) {
    ++stats_.p2p.calls;
    stats_.p2p.bytes += bytes;
    ++stats_.p2p.messages;
  }
  Parcel parcel;
  parcel.src = rank_;
  parcel.tag = tag;
  parcel.bytes.resize(bytes);
  if (bytes != 0) std::memcpy(parcel.bytes.data(), data, bytes);
  World::Mailbox& box = *world_->mailboxes_[static_cast<std::size_t>(dst)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  box.queue.push_back(std::move(parcel));
}

std::vector<Parcel> Comm::poll_parcels() {
  if (world_->failed_.load(std::memory_order_acquire)) throw AbortedError{};
  World::Mailbox& box = *world_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::vector<Parcel> drained;
  const std::lock_guard<std::mutex> lock(box.mutex);
  drained.swap(box.queue);
  return drained;
}

bool Comm::mailbox_empty() const {
  World::Mailbox& box = *world_->mailboxes_[static_cast<std::size_t>(rank_)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  return box.queue.empty();
}

void Comm::publish(const void* ptr) {
  world_->slots_[static_cast<std::size_t>(rank_)] = ptr;
  world_->sync();
}

const void* Comm::peer(int r) const {
  return world_->slots_[static_cast<std::size_t>(r)];
}

void Comm::release() { world_->sync(); }

void World::mark_failed(std::exception_ptr ep) {
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = ep;
  }
  failed_.store(true, std::memory_order_release);
}

void World::flag_corruption(int src, int dst) {
  bool expected = false;
  if (corrupted_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    corrupt_src_.store(src, std::memory_order_release);
    corrupt_dst_.store(dst, std::memory_order_release);
  }
}

void World::throw_if_corrupted() {
  if (!corrupted_.load(std::memory_order_acquire)) return;
  const int src = corrupt_src_.load(std::memory_order_acquire);
  const int dst = corrupt_dst_.load(std::memory_order_acquire);
  // Every rank of the exchange reaches this point (the flag is set before
  // the release barrier), so all ranks throw together: fail-stop semantics
  // with rank-consistent unwind depths.
  auto ep = std::make_exception_ptr(CorruptionError(
      "simmpi: alltoallv payload checksum mismatch on link " +
      std::to_string(src) + " -> " + std::to_string(dst)));
  mark_failed(ep);
  std::rethrow_exception(ep);
}

void World::enable_checksums(bool enabled) {
  for (auto& comm : comms_) comm->checksums_enabled_ = enabled;
}

void World::set_fault_plan(FaultPlan plan) {
  injector_ = std::make_unique<FaultInjector>(std::move(plan), size());
}

void World::clear_fault_plan() { injector_.reset(); }

void World::run(const std::function<void(Comm&)>& fn) {
  // Fresh barrier each run: a failed previous run leaves dropped
  // participants behind, and normal completion must start from a clean
  // expected-count anyway.
  barrier_.emplace(static_cast<std::ptrdiff_t>(comms_.size()));
  failed_.store(false, std::memory_order_release);
  first_error_ = nullptr;
  corrupted_.store(false, std::memory_order_release);
  corrupt_src_.store(-1, std::memory_order_release);
  corrupt_dst_.store(-1, std::memory_order_release);
  for (auto& box : mailboxes_) {
    const std::lock_guard<std::mutex> lock(box->mutex);
    box->queue.clear();
  }

  auto body = [&](Comm& comm) {
    try {
      fn(comm);
    } catch (const AbortedError&) {
      // Peer failed first; unwind quietly but release the barrier for any
      // rank still waiting on a phase.
      barrier_->arrive_and_drop();
      return;
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_release);
      barrier_->arrive_and_drop();
      return;
    }
  };

  if (comms_.size() == 1) {
    body(*comms_[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(comms_.size());
    for (auto& comm : comms_) {
      threads.emplace_back([&body, &comm] { body(*comm); });
    }
    for (auto& t : threads) t.join();
  }

  if (first_error_) std::rethrow_exception(first_error_);
  if (failed_.load(std::memory_order_acquire)) throw AbortedError{};
}

CommStats World::aggregate_stats() const {
  CommStats total;
  total.resize(comms_.size());
  for (const auto& comm : comms_) total.merge(comm->stats_);
  return total;
}

void World::reset_stats() {
  for (auto& comm : comms_) {
    comm->stats_.clear();
    comm->trace_.clear();
  }
}

void World::enable_trace(bool enabled) {
  for (auto& comm : comms_) comm->trace_enabled_ = enabled;
}

P2pSummary World::p2p_summary() const {
  P2pSummary summary;
  for (const auto& comm : comms_) {
    const CommStats& s = comm->stats_;
    summary.flushes += s.p2p.calls;
    summary.messages += s.p2p.messages;
    summary.bytes += s.p2p.bytes;
    summary.max_rank_bytes = std::max(summary.max_rank_bytes, s.p2p.bytes);
    summary.flush_capacity += s.p2p_flush_capacity;
    summary.flush_timeout += s.p2p_flush_timeout;
  }
  return summary;
}

std::vector<TraceRound> World::merged_trace() const {
  const std::size_t length = comms_.front()->trace_.size();
  for (const auto& comm : comms_) {
    if (comm->trace_.size() != length) {
      throw std::logic_error(
          "merged_trace: rank trace lengths diverge (mismatched "
          "collectives)");
    }
  }
  std::vector<TraceRound> rounds(length);
  for (std::size_t i = 0; i < length; ++i) {
    rounds[i].kind = comms_.front()->trace_[i].kind;
    for (const auto& comm : comms_) {
      const TraceEvent& event = comm->trace_[i];
      if (event.kind != rounds[i].kind) {
        throw std::logic_error(
            "merged_trace: rank collective kinds diverge at round " +
            std::to_string(i));
      }
      rounds[i].total_bytes += event.bytes;
      rounds[i].max_rank_bytes = std::max(rounds[i].max_rank_bytes,
                                          event.bytes);
      rounds[i].stall_seconds =
          std::max(rounds[i].stall_seconds, event.stall_seconds);
    }
  }
  return rounds;
}

}  // namespace g500::simmpi
