// JSON serialization of the runtime's counter and fault structs
// (docs/telemetry.md is the authoritative schema reference).
//
// Versioning: each top-level object carries a schema_version field; bump
// the constant on any breaking change (removed/renamed field, changed
// meaning or unit).  Adding fields is not a breaking change.
#pragma once

#include "simmpi/fault.hpp"
#include "simmpi/stats.hpp"
#include "simmpi/trace.hpp"
#include "util/json.hpp"

namespace g500::simmpi {

constexpr int kCommStatsSchemaVersion = 1;
constexpr int kFaultPlanSchemaVersion = 1;
constexpr int kTraceSchemaVersion = 1;

/// {"calls", "bytes", "messages"} — one collective class.
[[nodiscard]] util::Json to_json(const CollectiveStats& s);

/// Full communication record: per-collective blocks, barriers,
/// stall_seconds, derived totals.  include_bytes_to adds the per-
/// destination traffic vector (omitted by default: O(ranks) per report).
[[nodiscard]] util::Json to_json(const CommStats& s,
                                 bool include_bytes_to = false);

/// Machine-wide async point-to-point stream summary
/// (World::p2p_summary()).
[[nodiscard]] util::Json to_json(const P2pSummary& p);

/// One merged machine-wide trace round.
[[nodiscard]] util::Json to_json(const TraceRound& r);

/// One planned fault event.
[[nodiscard]] util::Json to_json(const FaultEvent& e);

/// The whole schedule, plus schema_version.
[[nodiscard]] util::Json to_json(const FaultPlan& plan);

/// Outcome of an installed plan: the schedule plus how many events fired
/// and each rank's collective progress.
[[nodiscard]] util::Json to_json(const FaultInjector& injector,
                                 int num_ranks);

}  // namespace g500::simmpi
