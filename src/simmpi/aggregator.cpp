#include "simmpi/aggregator.hpp"

namespace g500::simmpi {

bool QuiescenceDetector::on_control(const Parcel& parcel) {
  if (parcel.tag == kQuiescenceTerminateTag) {
    terminated_ = true;
    return true;
  }
  if (parcel.tag != kQuiescenceTokenTag) return false;
  if (terminated_) return true;  // stale token after the decision: drop
  Token token;
  std::memcpy(&token, parcel.bytes.data(), sizeof(Token));
  held_ = token;
  holding_ = true;
  return true;
}

void QuiescenceDetector::forward(const Token& token, int dst) {
  comm_->send_parcel(dst, kQuiescenceTokenTag, &token, sizeof(Token),
                     SendReason::kControl);
}

void QuiescenceDetector::advance() {
  if (terminated_) return;
  const int P = comm_->size();
  const int rank = comm_->rank();

  if (rank != 0) {
    // Holding the token while idle: stamp our counters and pass it on.
    if (holding_) {
      holding_ = false;
      Token token = held_;
      token.sent += sent_;
      token.received += received_;
      forward(token, (rank + 1) % P);
    }
    return;
  }

  // Rank 0: complete a returned wave, or launch the next one.
  if (holding_) {
    holding_ = false;
    wave_in_flight_ = false;
    ++waves_completed_;
    const Token& done = held_;
    if (have_prev_ && done.sent == done.received &&
        done.sent == prev_.sent && done.received == prev_.received) {
      // Two consecutive waves with identical global counters and nothing in
      // flight: globally quiescent.  Tell everyone (self included, by flag).
      terminated_ = true;
      const std::uint64_t wave = done.wave;
      for (int d = 1; d < P; ++d) {
        comm_->send_parcel(d, kQuiescenceTerminateTag, &wave, sizeof(wave),
                           SendReason::kControl);
      }
      return;
    }
    have_prev_ = true;
    prev_ = done;
  }
  if (!wave_in_flight_) {
    wave_in_flight_ = true;
    Token token;
    token.wave = next_wave_++;
    token.sent = sent_;
    token.received = received_;
    // P == 1: the token goes straight to our own mailbox and completes the
    // wave at the next on_control/advance pair.
    forward(token, 1 % P);
  }
}

}  // namespace g500::simmpi
