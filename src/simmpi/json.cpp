#include "simmpi/json.hpp"

namespace g500::simmpi {

util::Json to_json(const CollectiveStats& s) {
  util::Json j = util::Json::object();
  j["calls"] = s.calls;
  j["bytes"] = s.bytes;
  j["messages"] = s.messages;
  return j;
}

util::Json to_json(const CommStats& s, bool include_bytes_to) {
  util::Json j = util::Json::object();
  j["schema_version"] = kCommStatsSchemaVersion;
  j["alltoallv"] = to_json(s.alltoallv);
  j["allreduce"] = to_json(s.allreduce);
  j["allgather"] = to_json(s.allgather);
  j["broadcast"] = to_json(s.broadcast);
  j["p2p"] = to_json(s.p2p);
  j["p2p_flush_capacity"] = s.p2p_flush_capacity;
  j["p2p_flush_timeout"] = s.p2p_flush_timeout;
  j["barriers"] = s.barriers;
  j["stall_seconds"] = s.stall_seconds;
  j["total_bytes"] = s.total_bytes();
  j["total_messages"] = s.total_messages();
  j["rounds"] = s.rounds();
  if (include_bytes_to) {
    util::Json bytes_to = util::Json::array();
    for (const auto b : s.bytes_to) bytes_to.push_back(b);
    j["bytes_to"] = std::move(bytes_to);
  }
  return j;
}

util::Json to_json(const P2pSummary& p) {
  util::Json j = util::Json::object();
  j["flushes"] = p.flushes;
  j["messages"] = p.messages;
  j["bytes"] = p.bytes;
  j["max_rank_bytes"] = p.max_rank_bytes;
  j["flush_capacity"] = p.flush_capacity;
  j["flush_timeout"] = p.flush_timeout;
  return j;
}

util::Json to_json(const TraceRound& r) {
  util::Json j = util::Json::object();
  j["kind"] = to_string(r.kind);
  j["total_bytes"] = r.total_bytes;
  j["max_rank_bytes"] = r.max_rank_bytes;
  j["stall_seconds"] = r.stall_seconds;
  return j;
}

namespace {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kStall:
      return "stall";
  }
  return "?";
}

}  // namespace

util::Json to_json(const FaultEvent& e) {
  util::Json j = util::Json::object();
  j["kind"] = to_string(e.kind);
  j["rank"] = e.rank;
  j["at_call"] = e.at_call;
  if (e.kind == FaultKind::kStall) j["stall_seconds"] = e.stall_seconds;
  if (e.kind == FaultKind::kCorrupt) {
    j["corrupt_src"] = e.corrupt_src;
    j["corrupt_bit"] = e.corrupt_bit;
  }
  return j;
}

util::Json to_json(const FaultPlan& plan) {
  util::Json j = util::Json::object();
  j["schema_version"] = kFaultPlanSchemaVersion;
  util::Json events = util::Json::array();
  for (const auto& e : plan.events()) events.push_back(to_json(e));
  j["events"] = std::move(events);
  return j;
}

util::Json to_json(const FaultInjector& injector, int num_ranks) {
  util::Json j = util::Json::object();
  j["schema_version"] = kFaultPlanSchemaVersion;
  j["plan"] = to_json(injector.plan());
  j["events_fired"] = injector.events_fired();
  util::Json calls = util::Json::array();
  for (int r = 0; r < num_ranks; ++r) {
    calls.push_back(injector.collective_calls(r));
  }
  j["collective_calls_per_rank"] = std::move(calls);
  return j;
}

}  // namespace g500::simmpi
