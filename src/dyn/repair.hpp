// Incremental SSSP repair: after a MutableGraph commit, re-relax only the
// affected cone of a previous SSSP result instead of recomputing.
//
// Float relaxation run to quiescence converges to the unique minimal fixed
// point (rounding is monotone: a <= a' implies round(a+w) <= round(a'+w)),
// so a warm-started run that reaches quiescence yields *distances*
// bit-identical to a from-scratch recompute — the property bench_dynamic
// gates on.  Parents may differ between the two runs; both are valid
// shortest-path trees.
//
// The repair protocol:
//   1. Suspects — owned vertices whose tree edge was removed or increased
//      (parent[local(v)] == u for a suspect directed copy (v, u)).
//   2. Invalidation — the suspect set's tree descendants, found by one
//      child-index exchange plus frontier waves down the pre-update tree;
//      invalidated labels reset to infinity (they may no longer be
//      attainable).
//   3. Seeding — endpoints of inserted/decreased edges plus every
//      finite-distance neighbor of an invalidated vertex.
//   4. One core::delta_stepping_repair run from those seeds to quiescence.
//
// Call with the POST-commit graph view and the PRE-commit labels; labels
// are updated in place.  Crash recovery is wholesale: a failed repair is
// re-run from a caller-held copy of the pre-commit labels (the engine's
// checkpoint path is deliberately not used here).
#pragma once

#include "core/delta_stepping.hpp"
#include "dyn/mutable_graph.hpp"

namespace g500::dyn {

struct RepairStats {
  std::uint64_t suspects = 0;             ///< global
  std::uint64_t invalidated = 0;          ///< global
  std::uint64_t seeds = 0;                ///< global
  std::uint64_t invalidation_rounds = 0;  ///< tree-depth waves
  core::SsspStats sssp;                   ///< this rank's engine counters
};

/// Repair `labels` (this rank's owned slice of an SSSP fixed point for
/// `root` on the pre-commit graph) to the post-commit fixed point over
/// `g` (the post-commit view).  SPMD collective.  `config` must not carry
/// pruning/deadline/checkpoint features; they are cleared defensively.
void incremental_sssp_repair(simmpi::Comm& comm, const graph::DistGraph& g,
                             graph::VertexId root,
                             const CommitSummary& commit,
                             core::SsspResult& labels,
                             const core::SsspConfig& config = {},
                             RepairStats* stats = nullptr);

}  // namespace g500::dyn
