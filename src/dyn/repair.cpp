#include "dyn/repair.hpp"

#include <algorithm>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace g500::dyn {

using graph::kInfDistance;
using graph::kNoVertex;
using graph::LocalId;
using graph::VertexId;

namespace {

struct ChildRecord {
  VertexId parent = 0;
  VertexId child = 0;
};
static_assert(std::is_trivially_copyable_v<ChildRecord>);

}  // namespace

void incremental_sssp_repair(simmpi::Comm& comm, const graph::DistGraph& g,
                             VertexId root, const CommitSummary& commit,
                             core::SsspResult& labels,
                             const core::SsspConfig& config,
                             RepairStats* stats) {
  const int P = comm.size();
  const auto local_n = static_cast<std::size_t>(g.part.count(comm.rank()));
  const VertexId my_begin = g.part.begin(comm.rank());
  if (labels.dist.size() != local_n || labels.parent.size() != local_n) {
    throw std::invalid_argument(
        "incremental_sssp_repair: labels do not match the owned range");
  }
  RepairStats local_stats;
  RepairStats& rs = stats != nullptr ? *stats : local_stats;

  // 1. Suspects: the pre-update tree edge into src ran over a removed or
  // increased copy, so src's label may no longer be attainable.
  std::vector<std::uint8_t> invalid(local_n, 0);
  std::vector<LocalId> frontier;
  for (const auto& s : commit.suspects) {
    const auto ls = static_cast<LocalId>(s.src - my_begin);
    if (labels.parent[ls] == s.dst && invalid[ls] == 0) {
      invalid[ls] = 1;
      frontier.push_back(ls);
    }
  }
  rs.suspects = comm.allreduce_sum(static_cast<std::uint64_t>(frontier.size()));

  // 2. Invalidate every tree descendant of a suspect.  Build the child
  // index once (each vertex reports itself to its parent's owner), then
  // propagate down the pre-update tree in frontier waves.
  std::vector<std::vector<ChildRecord>> child_out(static_cast<std::size_t>(P));
  for (LocalId v = 0; v < static_cast<LocalId>(local_n); ++v) {
    const VertexId gv = my_begin + v;
    const VertexId p = labels.parent[v];
    if (p == kNoVertex || p == gv) continue;  // unreachable or the root
    child_out[static_cast<std::size_t>(g.part.owner(p))].push_back(
        ChildRecord{p, gv});
  }
  std::vector<ChildRecord> child_in = comm.alltoallv(child_out);
  std::sort(child_in.begin(), child_in.end(),
            [](const ChildRecord& a, const ChildRecord& b) {
              return a.parent != b.parent ? a.parent < b.parent
                                          : a.child < b.child;
            });
  std::vector<std::uint64_t> child_begin(local_n + 1, 0);
  for (const auto& rec : child_in) {
    ++child_begin[static_cast<LocalId>(rec.parent - my_begin) + 1];
  }
  for (std::size_t i = 1; i <= local_n; ++i) child_begin[i] += child_begin[i - 1];

  while (comm.allreduce_sum(static_cast<std::uint64_t>(frontier.size())) > 0) {
    ++rs.invalidation_rounds;
    std::vector<std::vector<VertexId>> out(static_cast<std::size_t>(P));
    for (const auto x : frontier) {
      for (std::uint64_t i = child_begin[x]; i < child_begin[x + 1]; ++i) {
        const VertexId c = child_in[i].child;
        out[static_cast<std::size_t>(g.part.owner(c))].push_back(c);
      }
    }
    const std::vector<VertexId> in = comm.alltoallv(out);
    frontier.clear();
    for (const auto c : in) {
      const auto lc = static_cast<LocalId>(c - my_begin);
      if (invalid[lc] == 0) {
        invalid[lc] = 1;
        frontier.push_back(lc);
      }
    }
  }

  // 3. Seed the repair: every finite-distance neighbor of an invalidated
  // vertex (the cone's rim re-offers inward) plus the owned endpoints of
  // inserted/decreased edges.  Invalidated labels reset to infinity first
  // so a seed is never queued at an unattainable label.
  std::vector<std::vector<VertexId>> seed_out(static_cast<std::size_t>(P));
  std::uint64_t invalidated_local = 0;
  for (LocalId v = 0; v < static_cast<LocalId>(local_n); ++v) {
    if (invalid[v] == 0) continue;
    ++invalidated_local;
    for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v); ++e) {
      const VertexId y = g.csr.dst(e);
      seed_out[static_cast<std::size_t>(g.part.owner(y))].push_back(y);
    }
    labels.dist[v] = kInfDistance;
    labels.parent[v] = kNoVertex;
  }
  rs.invalidated = comm.allreduce_sum(invalidated_local);
  for (auto& box : seed_out) {
    std::sort(box.begin(), box.end());
    box.erase(std::unique(box.begin(), box.end()), box.end());
  }
  const std::vector<VertexId> seed_in = comm.alltoallv(seed_out);

  std::vector<std::uint8_t> seeded(local_n, 0);
  core::WarmStart warm;
  for (const auto y : seed_in) {
    const auto ly = static_cast<LocalId>(y - my_begin);
    if (invalid[ly] == 0 && labels.dist[ly] != kInfDistance &&
        seeded[ly] == 0) {
      seeded[ly] = 1;
      warm.seeds.push_back(ly);
    }
  }
  for (const auto lv : commit.decrease_seeds) {
    if (invalid[lv] == 0 && labels.dist[lv] != kInfDistance &&
        seeded[lv] == 0) {
      seeded[lv] = 1;
      warm.seeds.push_back(lv);
    }
  }
  std::sort(warm.seeds.begin(), warm.seeds.end());
  rs.seeds = comm.allreduce_sum(static_cast<std::uint64_t>(warm.seeds.size()));

  // 4. Run the existing engine from the warm labels to quiescence.
  warm.dist = labels.dist;
  warm.parent = labels.parent;
  core::SsspConfig cfg = config;
  cfg.prune_lb = nullptr;
  cfg.deadline_buckets = 0;
  cfg.checkpoint_interval = 0;
  core::SsspResult repaired =
      core::delta_stepping_repair(comm, g, root, warm, cfg, &rs.sssp);
  labels = std::move(repaired);
}

}  // namespace g500::dyn
