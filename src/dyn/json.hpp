// JSON serialization of the dynamic-graph telemetry (docs/dynamic.md).
#pragma once

#include "dyn/mutable_graph.hpp"
#include "dyn/repair.hpp"
#include "util/json.hpp"

namespace g500::dyn {

/// MutableGraph lifetime counters -> telemetry object.
[[nodiscard]] util::Json to_json(const DynStats& stats);

/// One repair's cone accounting -> telemetry object.
[[nodiscard]] util::Json to_json(const RepairStats& stats);

}  // namespace g500::dyn
