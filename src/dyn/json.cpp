#include "dyn/json.hpp"

namespace g500::dyn {

util::Json to_json(const DynStats& stats) {
  util::Json j = util::Json::object();
  j["batches"] = stats.batches;
  j["updates_staged"] = stats.updates_staged;
  j["edges_applied"] = stats.edges_applied;
  j["inserted"] = stats.inserted;
  j["removed"] = stats.removed;
  j["reweighted"] = stats.reweighted;
  j["self_loops_dropped"] = stats.self_loops_dropped;
  j["compactions"] = stats.compactions;
  return j;
}

util::Json to_json(const RepairStats& stats) {
  util::Json j = util::Json::object();
  j["suspects"] = stats.suspects;
  j["invalidated"] = stats.invalidated;
  j["seeds"] = stats.seeds;
  j["invalidation_rounds"] = stats.invalidation_rounds;
  j["relax_generated"] = stats.sssp.relax_generated;
  j["relax_applied"] = stats.sssp.relax_applied;
  j["buckets_processed"] = stats.sssp.buckets_processed;
  return j;
}

}  // namespace g500::dyn
