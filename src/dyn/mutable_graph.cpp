#include "dyn/mutable_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace g500::dyn {

using graph::LocalId;
using graph::VertexId;
using graph::Weight;

namespace {

/// One directed overlay op on the wire (both directions of every staged
/// update are routed to the owner of their source, like the builder).
struct DirectedUpdate {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 0.0f;
  std::uint8_t op = 0;
  std::uint8_t pad0 = 0;
  std::uint8_t pad1 = 0;
  std::uint8_t pad2 = 0;
};
static_assert(std::is_trivially_copyable_v<DirectedUpdate>);

/// Globally-gathered applied record (canonical copy only, u < v).
struct AppliedWire {
  VertexId u = 0;
  VertexId v = 0;
  Weight old_weight = 0.0f;
  Weight new_weight = 0.0f;
  std::uint8_t had_old = 0;
  std::uint8_t removed = 0;
  std::uint8_t pad0 = 0;
  std::uint8_t pad1 = 0;
};
static_assert(std::is_trivially_copyable_v<AppliedWire>);

}  // namespace

MutableGraph::MutableGraph(simmpi::Comm& comm, graph::DistGraph base)
    : MutableGraph(comm, std::move(base), Config()) {}

MutableGraph::MutableGraph(simmpi::Comm& comm, graph::DistGraph base,
                           Config config)
    : comm_(comm), config_(config), view_(std::move(base)) {
  const auto local_n = static_cast<std::size_t>(view_.part.count(comm_.rank()));
  adj_.resize(local_n);
  for (LocalId u = 0; u < static_cast<LocalId>(local_n); ++u) {
    for (std::uint64_t e = view_.csr.edges_begin(u); e < view_.csr.edges_end(u);
         ++e) {
      adj_[u].emplace(view_.csr.dst(e), view_.csr.weight(e));
    }
  }
}

void MutableGraph::stage(const EdgeUpdate& update) {
  if (update.u >= view_.num_vertices || update.v >= view_.num_vertices) {
    throw std::out_of_range("MutableGraph::stage: endpoint out of range");
  }
  staged_.push_back(update);
  ++stats_.updates_staged;
}

void MutableGraph::stage_insert(VertexId u, VertexId v, Weight w) {
  stage(EdgeUpdate{u, v, w, UpdateOp::kInsert});
}

void MutableGraph::stage_set(VertexId u, VertexId v, Weight w) {
  stage(EdgeUpdate{u, v, w, UpdateOp::kSet});
}

void MutableGraph::stage_delete(VertexId u, VertexId v) {
  stage(EdgeUpdate{u, v, 0.0f, UpdateOp::kDelete});
}

CommitSummary MutableGraph::commit_batch() {
  CommitSummary summary;
  const int P = comm_.size();

  // Route both directions to the owners; drop self-loops (builder rule).
  std::uint64_t self_loops = 0;
  std::vector<std::vector<DirectedUpdate>> out(static_cast<std::size_t>(P));
  for (const auto& up : staged_) {
    if (up.u == up.v) {
      ++self_loops;
      continue;
    }
    const auto op = static_cast<std::uint8_t>(up.op);
    out[static_cast<std::size_t>(view_.part.owner(up.u))].push_back(
        DirectedUpdate{up.u, up.v, up.weight, op});
    out[static_cast<std::size_t>(view_.part.owner(up.v))].push_back(
        DirectedUpdate{up.v, up.u, up.weight, op});
  }
  const std::uint64_t staged_local = staged_.size();
  staged_.clear();
  std::vector<DirectedUpdate> incoming = comm_.alltoallv(out);

  // Merge conflicting ops on the same directed copy: highest precedence
  // wins (kDelete > kSet > kInsert — the enum is ordered that way), ties
  // resolved to the minimum weight of the winning class.  The merge is a
  // semilattice, so the outcome is independent of rank layout and
  // arrival order.
  std::sort(incoming.begin(), incoming.end(),
            [](const DirectedUpdate& a, const DirectedUpdate& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.op != b.op) return a.op > b.op;
              return a.weight < b.weight;
            });

  const VertexId my_begin = view_.part.begin(comm_.rank());
  std::vector<std::uint8_t> seeded(adj_.size(), 0);
  std::vector<AppliedWire> canonical;
  std::uint64_t inserted = 0, removed = 0, reweighted = 0;
  std::uint64_t applied_directed = 0;

  for (std::size_t i = 0; i < incoming.size();) {
    const DirectedUpdate& head = incoming[i];  // the winning merged op
    std::size_t j = i + 1;
    while (j < incoming.size() && incoming[j].src == head.src &&
           incoming[j].dst == head.dst) {
      ++j;
    }
    i = j;

    const auto ls = static_cast<LocalId>(head.src - my_begin);
    auto it = adj_[ls].find(head.dst);
    const bool had = it != adj_[ls].end();
    const Weight old_w = had ? it->second : 0.0f;
    bool changed = false, is_removal = false;
    Weight new_w = old_w;
    switch (static_cast<UpdateOp>(head.op)) {
      case UpdateOp::kInsert:
        new_w = had ? std::min(old_w, head.weight) : head.weight;
        changed = !had || new_w < old_w;
        break;
      case UpdateOp::kSet:
        new_w = head.weight;
        changed = !had || new_w != old_w;
        break;
      case UpdateOp::kDelete:
        changed = is_removal = had;
        break;
    }
    if (!changed) continue;
    ++applied_directed;
    if (is_removal) {
      adj_[ls].erase(it);
    } else if (had) {
      it->second = new_w;
    } else {
      adj_[ls].emplace(head.dst, new_w);
    }

    if (is_removal || (had && new_w > old_w)) {
      summary.suspects.push_back(SuspectEdge{head.src, head.dst, old_w});
    }
    if (!had || new_w < old_w) {
      if (!seeded[ls]) {
        seeded[ls] = 1;
        summary.decrease_seeds.push_back(ls);
      }
    }
    if (head.src < head.dst) {  // count each undirected change once
      canonical.push_back(AppliedWire{
          head.src, head.dst, old_w, new_w,
          static_cast<std::uint8_t>(had ? 1 : 0),
          static_cast<std::uint8_t>(is_removal ? 1 : 0)});
      if (!had) {
        ++inserted;
      } else if (is_removal) {
        ++removed;
      } else {
        ++reweighted;
      }
    }
  }
  overlay_directed_ += applied_directed;

  const auto totals = comm_.allreduce_vec<std::uint64_t>(
      {staged_local, self_loops, inserted, removed, reweighted},
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  summary.staged_global = totals[0];
  summary.self_loops_dropped = totals[1];
  summary.inserted = totals[2];
  summary.removed = totals[3];
  summary.reweighted = totals[4];

  // Agree the applied set so every rank can invalidate caches identically.
  std::vector<AppliedWire> applied_global = comm_.allgatherv(canonical);
  std::sort(applied_global.begin(), applied_global.end(),
            [](const AppliedWire& a, const AppliedWire& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  summary.applied.reserve(applied_global.size());
  for (const auto& w : applied_global) {
    summary.applied.push_back(AppliedEdge{w.u, w.v, w.old_weight, w.new_weight,
                                          w.had_old, w.removed});
    summary.affected_vertices.push_back(w.u);
    summary.affected_vertices.push_back(w.v);
  }
  std::sort(summary.affected_vertices.begin(), summary.affected_vertices.end());
  summary.affected_vertices.erase(std::unique(summary.affected_vertices.begin(),
                                              summary.affected_vertices.end()),
                                  summary.affected_vertices.end());

  rebuild_view();
  // Keep the TEPS normalizer in step with the effective edge set
  // (saturating: removals can never push it below zero).
  view_.num_input_edges += summary.inserted;
  view_.num_input_edges -=
      std::min<std::uint64_t>(view_.num_input_edges, summary.removed);

  version_ = comm_.allreduce_max(version_ + 1);
  summary.graph_version = version_;

  ++stats_.batches;
  stats_.edges_applied += summary.applied.size();
  stats_.inserted += summary.inserted;
  stats_.removed += summary.removed;
  stats_.reweighted += summary.reweighted;
  stats_.self_loops_dropped += summary.self_loops_dropped;

  ++commits_since_compact_;
  if (should_compact()) {
    compact();
    summary.compacted = true;
  }
  return summary;
}

void MutableGraph::rebuild_view() {
  const auto local_n = static_cast<LocalId>(adj_.size());
  std::vector<graph::WireEdge> edges;
  std::uint64_t local_directed = 0;
  for (const auto& row : adj_) local_directed += row.size();
  edges.reserve(local_directed);
  for (LocalId u = 0; u < local_n; ++u) {
    for (const auto& [dst, w] : adj_[u]) {
      edges.push_back(graph::WireEdge{u, dst, w});
    }
  }
  view_.csr = graph::LocalCsr(local_n, std::move(edges));
  view_.pull = config_.build.build_pull_index
                   ? graph::PullIndex::from_csr(view_.csr)
                   : graph::PullIndex{};
  view_.num_directed_edges = comm_.allreduce_sum(local_directed);
  view_.degree_hist = util::Log2Histogram{};
  for (LocalId u = 0; u < local_n; ++u) {
    view_.degree_hist.add(view_.csr.degree(u));
  }
  // Hubs keep their (possibly stale) selection until compaction: the hub
  // filter is correct for any vertex set, staleness only costs traffic.
}

bool MutableGraph::should_compact() {
  bool want = config_.compact_every > 0 &&
              commits_since_compact_ >= config_.compact_every;
  if (config_.compact_overlay_ratio > 0.0) {
    const std::uint64_t overlay_global = comm_.allreduce_sum(overlay_directed_);
    const auto directed = static_cast<double>(
        std::max<std::uint64_t>(1, view_.num_directed_edges));
    if (static_cast<double>(overlay_global) >
        config_.compact_overlay_ratio * directed) {
      want = true;
    }
  }
  return want;
}

void MutableGraph::compact() {
  // Each undirected edge has copies at both owners; the smaller endpoint
  // emits, so the builder sees every edge exactly once.
  graph::EdgeList slice;
  slice.num_vertices = view_.num_vertices;
  const VertexId my_begin = view_.part.begin(comm_.rank());
  for (LocalId u = 0; u < static_cast<LocalId>(adj_.size()); ++u) {
    const VertexId gu = my_begin + u;
    for (const auto& [dst, w] : adj_[u]) {
      if (gu < dst) slice.edges.push_back(graph::Edge{gu, dst, w});
    }
  }
  const std::uint64_t input_edges = view_.num_input_edges;
  graph::DistGraph rebuilt = graph::build_distributed(
      comm_, slice, view_.num_vertices, config_.build);
  rebuilt.num_input_edges = input_edges;  // keep the bookkept normalizer
  view_ = std::move(rebuilt);

  adj_.assign(static_cast<std::size_t>(view_.part.count(comm_.rank())), {});
  for (LocalId u = 0; u < static_cast<LocalId>(adj_.size()); ++u) {
    for (std::uint64_t e = view_.csr.edges_begin(u); e < view_.csr.edges_end(u);
         ++e) {
      adj_[u].emplace(view_.csr.dst(e), view_.csr.weight(e));
    }
  }
  overlay_directed_ = 0;
  commits_since_compact_ = 0;
  ++stats_.compactions;
}

}  // namespace g500::dyn
