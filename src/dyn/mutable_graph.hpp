// Streaming mutations over the distributed CSR.
//
// Production graph services mutate under live traffic, but the engine (and
// every structure derived from the graph — hub lists, pull index, oracle
// slices, caches) assumes a frozen DistGraph.  MutableGraph bridges the
// two with a batched delta log:
//
//   * stage() buffers edge updates locally (the delta log);
//   * commit_batch() is a collective that routes both directions of every
//     staged update to the owning ranks (exactly like the builder), merges
//     conflicting ops deterministically, consults the per-vertex overlay
//     alongside the CSR adjacency to apply them, rebuilds the rank-local
//     view (CSR + pull index) from the merged adjacency, and agrees a new
//     monotonically increasing graph_version by allreduce;
//   * periodic compaction folds everything back through the distributed
//     builder (graph::build_distributed), refreshing the hub list and
//     degree statistics that per-commit view rebuilds leave stale.
//
// The committed view is a real DistGraph, so every existing kernel runs
// over it unchanged; commit summaries carry exactly the seed/suspect sets
// dyn::incremental_sssp_repair needs to re-relax only the affected cone.
//
// Batch-merge rule (deterministic regardless of which rank staged what):
// ops on the same undirected edge within one commit merge by precedence
// kDelete > kSet > kInsert, ties resolved to the minimum weight of the
// winning class.  Inserting an edge that already exists keeps the minimum
// of the old and new weight (the builder's parallel-edge dedup rule);
// kSet overwrites the weight exactly (the only way to *increase* one);
// self-loops are dropped, as in the builder.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::dyn {

enum class UpdateOp : std::uint8_t { kInsert = 0, kSet = 1, kDelete = 2 };

/// One staged undirected edge update (weight is ignored for kDelete).
struct EdgeUpdate {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  graph::Weight weight = 0.0f;
  UpdateOp op = UpdateOp::kInsert;
};

/// One undirected edge the last commit effectively changed, canonical
/// (u < v); the list is identical on every rank (allgathered) so the
/// serving layer can evaluate invalidation brackets collectively.
struct AppliedEdge {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  graph::Weight old_weight = 0.0f;  ///< meaningful iff had_old
  graph::Weight new_weight = 0.0f;  ///< meaningful iff !removed
  std::uint8_t had_old = 0;         ///< edge existed before the commit
  std::uint8_t removed = 0;         ///< edge is gone after the commit
  std::uint8_t pad0 = 0;
  std::uint8_t pad1 = 0;
};

/// A removed or weight-increased directed copy stored on this rank.  The
/// repair layer tests `parent[local(src)] == dst` against a pre-update
/// SSSP tree to find vertices whose label may no longer be attainable.
struct SuspectEdge {
  graph::VertexId src = 0;  ///< owned by this rank
  graph::VertexId dst = 0;
  graph::Weight old_weight = 0.0f;
};

/// What one commit_batch() did.  Global fields are identical on every
/// rank; decrease_seeds/suspects are this rank's owned share.
struct CommitSummary {
  std::uint64_t graph_version = 0;
  std::uint64_t staged_global = 0;       ///< updates staged, all ranks
  std::uint64_t self_loops_dropped = 0;  ///< global
  std::uint64_t inserted = 0;            ///< global, undirected
  std::uint64_t removed = 0;             ///< global, undirected
  std::uint64_t reweighted = 0;          ///< global, undirected
  bool compacted = false;

  /// Effective undirected changes, canonical u < v, sorted; identical on
  /// every rank.
  std::vector<AppliedEdge> applied;
  /// Sorted distinct endpoints of `applied`; identical on every rank.
  std::vector<graph::VertexId> affected_vertices;
  /// Owned sources of inserted/decreased directed copies — warm-start
  /// seeds for incremental repair (this rank only, deduplicated).
  std::vector<graph::LocalId> decrease_seeds;
  /// Removed/increased directed copies stored here (this rank only).
  std::vector<SuspectEdge> suspects;

  [[nodiscard]] std::uint64_t edges_applied() const noexcept {
    return applied.size();
  }
};

/// Lifetime counters of one MutableGraph (global unless noted).
struct DynStats {
  std::uint64_t batches = 0;
  std::uint64_t updates_staged = 0;  ///< this rank
  std::uint64_t edges_applied = 0;   ///< undirected effective changes
  std::uint64_t inserted = 0;
  std::uint64_t removed = 0;
  std::uint64_t reweighted = 0;
  std::uint64_t self_loops_dropped = 0;
  std::uint64_t compactions = 0;
};

class MutableGraph {
 public:
  struct Config {
    /// Compact every N commits (0 = only on explicit compact()).
    std::uint64_t compact_every = 0;
    /// Compact when applied-but-uncompacted directed changes exceed this
    /// fraction of the directed edge count (0 = disabled).
    double compact_overlay_ratio = 0.0;
    /// Build options for the compaction rebuild.
    graph::BuildOptions build;
  };

  /// Adopt `base` as version 0.  SPMD: every rank passes its own piece;
  /// `config` must be identical on every rank (the compaction decision is
  /// derived from it on all ranks in lockstep).
  MutableGraph(simmpi::Comm& comm, graph::DistGraph base, Config config);
  MutableGraph(simmpi::Comm& comm, graph::DistGraph base);

  /// The current committed graph.  The reference is stable across commits
  /// and compactions (the contents are replaced in place), so engines and
  /// services can hold it for the MutableGraph's lifetime.
  [[nodiscard]] const graph::DistGraph& view() const noexcept { return view_; }

  /// Monotonically increasing version, bumped (allreduce-agreed) by every
  /// commit_batch().  Version 0 is the adopted base.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  [[nodiscard]] const DynStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pending() const noexcept { return staged_.size(); }
  /// Directed changes applied since the last compaction (this rank).
  [[nodiscard]] std::uint64_t overlay_edges() const noexcept {
    return overlay_directed_;
  }

  /// Buffer one update locally (any rank may stage any edge).  Throws
  /// std::out_of_range on an endpoint >= num_vertices, like the builder.
  void stage(const EdgeUpdate& update);
  void stage_insert(graph::VertexId u, graph::VertexId v, graph::Weight w);
  void stage_set(graph::VertexId u, graph::VertexId v, graph::Weight w);
  void stage_delete(graph::VertexId u, graph::VertexId v);

  /// Collective: apply every staged update (on all ranks), rebuild the
  /// local view, bump the version, and maybe compact.  Every rank must
  /// call it, even with nothing staged.
  CommitSummary commit_batch();

  /// Collective: fold the applied overlay back through the distributed
  /// builder, refreshing hubs, degree statistics and storage balance.
  void compact();

 private:
  void rebuild_view();
  [[nodiscard]] bool should_compact();

  simmpi::Comm& comm_;
  Config config_;
  graph::DistGraph view_;
  std::uint64_t version_ = 0;
  std::uint64_t commits_since_compact_ = 0;
  std::uint64_t overlay_directed_ = 0;

  /// Authoritative effective adjacency of owned vertices (dst -> weight);
  /// the overlay consulted alongside the CSR when applying a batch, and
  /// the source the view CSR is rebuilt from.
  std::vector<std::map<graph::VertexId, graph::Weight>> adj_;

  std::vector<EdgeUpdate> staged_;
  DynStats stats_;
};

}  // namespace g500::dyn
