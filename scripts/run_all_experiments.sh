#!/usr/bin/env bash
# Regenerate every experiment (T1-T3, F1-F13, R1 recovery, S1 serving,
# + microbenchmarks) into results/, one file per harness, plus the full
# test log.  New bench_* binaries are picked up automatically.
#
#   scripts/run_all_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: '${BUILD_DIR}' does not look like a configured build tree" >&2
  echo "hint: cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

mkdir -p "${RESULTS_DIR}"

echo "== tests =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  | tee "${RESULTS_DIR}/tests.txt"

for bench in "${BUILD_DIR}"/bench/bench_*; do
  [[ -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  echo "== ${name} =="
  "${bench}" | tee "${RESULTS_DIR}/${name}.txt"
  echo
done

echo "All experiment outputs are in ${RESULTS_DIR}/ — compare against"
echo "EXPERIMENTS.md (shapes, not exact numbers: wall time is host-bound)."
