#!/usr/bin/env python3
"""Documentation gate for CI (stdlib-only).

Three checks:

1. Link integrity: every intra-repo markdown link in the root *.md files
   and docs/*.md resolves to an existing file (anchors are stripped;
   http(s)/mailto links are skipped).
2. Index reachability: every file under docs/ is reachable from the docs
   index (docs/README.md) by following intra-repo links, so no page can
   silently fall out of the table of contents.
3. Schema cross-check: every report key the CI schema gate
   (scripts/check_report_schema.py) enforces must appear literally in the
   schema documentation (docs/telemetry.md, docs/serving.md,
   docs/async.md or docs/dynamic.md).  Direction: the gate is the source
   of truth and the
   docs must keep up — a key added to the gate without documentation
   fails here; documenting extra fields the gate does not enforce is
   fine.

Usage: check_docs.py [repo-root]
Exits non-zero listing every violation.
"""

import ast
import pathlib
import re
import sys

# Markdown inline link: [text](target).  Good enough for these docs —
# no reference-style links in the repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")

# Where the schema gate's enforced keys must be documented.
SCHEMA_DOCS = ("docs/telemetry.md", "docs/serving.md", "docs/async.md",
               "docs/dynamic.md", "docs/out_of_core.md")


def markdown_files(root):
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def links_of(path):
    """Intra-repo link targets of a markdown file, resolved to paths."""
    out = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        out.append((target, (path.parent / target.split("#")[0]).resolve()))
    return out


def check_links(files, errors):
    for path in files:
        for target, resolved in links_of(path):
            if not resolved.exists():
                errors.append(f"{path}: broken link '{target}'")


def check_reachability(root, files, errors):
    index = root / "docs" / "README.md"
    if not index.is_file():
        errors.append("docs/README.md: missing (docs index)")
        return
    reachable = {index.resolve()}
    queue = [index]
    while queue:
        page = queue.pop()
        for _, resolved in links_of(page):
            if resolved.suffix == ".md" and resolved.is_file():
                if resolved not in reachable:
                    reachable.add(resolved)
                    queue.append(pathlib.Path(resolved))
    for path in files:
        if path.parent.name == "docs" and path.resolve() not in reachable:
            errors.append(
                f"{path}: not reachable from the docs index docs/README.md")


def schema_gate_keys(root):
    """Every string inside a module-level *_KEYS/*_KERNELS tuple of the
    schema gate — the fields CI enforces on BENCH_*.json reports."""
    gate = root / "scripts" / "check_report_schema.py"
    tree = ast.parse(gate.read_text(encoding="utf-8"))
    keys = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not any(n.endswith(("_KEYS", "_KERNELS")) for n in names):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    keys.add(elt.value)
    return keys


def check_schema_documented(root, errors):
    corpus = "\n".join(
        (root / doc).read_text(encoding="utf-8")
        for doc in SCHEMA_DOCS
        if (root / doc).is_file())
    for key in sorted(schema_gate_keys(root)):
        if not re.search(
                rf"(?<![A-Za-z0-9_]){re.escape(key)}(?![A-Za-z0-9_])", corpus):
            errors.append(
                f"scripts/check_report_schema.py: enforced key '{key}' is "
                f"not documented in {', '.join(SCHEMA_DOCS)}")


def main(argv):
    root = pathlib.Path(argv[1] if len(argv) > 1 else ".").resolve()
    if not (root / "docs").is_dir():
        print(f"error: {root} has no docs/ directory", file=sys.stderr)
        return 2
    files = markdown_files(root)
    errors = []
    check_links(files, errors)
    check_reachability(root, files, errors)
    check_schema_documented(root, errors)
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s), {len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
