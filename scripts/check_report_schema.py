#!/usr/bin/env python3
"""Validate BENCH_*.json run reports against the documented schema.

Stdlib-only gate for CI: checks the envelope and manifest keys that
docs/telemetry.md declares required (the C++ golden-schema tests in
tests/test_telemetry.cpp are the authoritative check; this catches a
harness that silently stopped writing conforming reports).

Usage: check_report_schema.py <report-or-dir>...
Exits non-zero listing every violation.
"""

import json
import pathlib
import sys

ENVELOPE_KEYS = ("schema_version", "harness", "manifest", "options", "cases")
MANIFEST_KEYS = (
    "schema_version",
    "host",
    "timestamp_utc",
    "git_describe",
    "build_type",
    "compiler",
    "cxx_standard",
)
TRACE_KEYS = ("schema_version", "displayTimeUnit", "traceEvents", "otherData")
# Serving reports (harness == "serving") carry an extra SLO section
# (docs/serving.md): latency percentiles, throughput, cache and shed
# counters of the open-loop run.
SERVING_KEYS = (
    "schema_version",
    "config",
    "workload",
    "run",
    "latency_ticks",
    "throughput_qps",
    "shed",
    "shed_rate",
    "cache",
)
SERVING_LATENCY_KEYS = ("p50", "p90", "p99")
SERVING_CACHE_KEYS = ("hits", "misses", "hit_rate", "evictions")
# serving.oracle: the landmark (ALT) on/off sweep — answers must be
# bit-identical while relaxations and wire bytes both drop.
SERVING_ORACLE_KEYS = (
    "landmarks",
    "queries",
    "bit_identical",
    "relax_reduction",
    "wire_reduction",
    "precompute_waves",
    "precompute_seconds",
    "off",
    "on",
)
# serving.adaptive: the fixed-batch sweep vs the rate-tracking controller.
SERVING_ADAPTIVE_KEYS = (
    "best_fixed_batch",
    "best_fixed_p99",
    "adaptive_p99",
    "adaptive_adjustments",
    "adaptive_shed",
    "adaptive_ok",
    "run",
)
# Aggregated engine-work counters every serving run JSON must carry (the
# cost side of the oracle ledger).
SERVING_RUN_KEYS = (
    "wire_bytes",
    "relax_generated",
    "relax_sent",
    "pruned_expand",
    "pruned_apply",
    "availability",
    "graph_version",
)
# The availability block every serving run carries (docs/telemetry.md):
# per-outcome counts plus the retry/breaker audit trail.
SERVING_AVAILABILITY_KEYS = (
    "served",
    "degraded",
    "deadline_exceeded",
    "failed",
    "shed",
    "availability",
    "attempts",
    "wave_retries",
    "waves_abandoned",
    "breaker_opened",
    "breaker_half_opened",
    "breaker_closed",
    "recovery_ticks",
    "backoff_seconds",
    "oracle_restored",
)
# serving.chaos: the fault-injection sweep — a faulted run must stay above
# the availability floor with every exact answer bit-identical, and a
# restart over the persisted oracle slices must skip the precompute waves.
SERVING_CHAOS_KEYS = (
    "avail_floor",
    "availability",
    "attempts",
    "wave_retries",
    "waves_abandoned",
    "exact_bit_identical",
    "exact_compared",
    "degraded_bracketed",
    "degraded_checked",
    "faults_exercised",
    "restart_precompute_waves",
    "oracle_restored",
    "chaos_ok",
    "reference",
    "faulted",
    "restart",
)
# serving.mixed: the YCSB-style multi-kernel mix (docs/serving.md) —
# per-class latency percentiles plus a validation digest per kernel that
# must match a sequential reference bit for bit.
SERVING_MIXED_KEYS = (
    "analytics_fraction",
    "config",
    "workload",
    "run",
    "kernels",
    "kernels_validated",
)
SERVING_MIXED_KERNELS = ("pagerank", "kcore", "components", "reachability")
# Per-class carve-out inside every serving metrics block
# (docs/telemetry.md): the distance class is global-minus-analytics.
SERVING_CLASS_KEYS = (
    "arrived",
    "admitted",
    "shed",
    "answered",
    "slo_violations",
    "deadline_exceeded",
    "degraded",
    "failed",
    "latency_ticks",
)
SERVING_POINT_CACHE_KEYS = ("hits", "misses", "inserts", "evictions")
# dynamic: the streaming-mutation bench (docs/dynamic.md) — incremental
# SSSP repair must be bit-identical to a from-scratch recompute after
# EVERY batch, and the repaired cone must cost strictly less relaxation
# work than the recompute on localized batches.
DYNAMIC_KEYS = (
    "batches",
    "edges_applied",
    "graph_version",
    "compactions",
    "repair_relax",
    "recompute_relax",
    "work_ratio",
    "bit_identical",
    "repair_ok",
    "invalidation",
    "point_persistence",
)
# The serving-invalidation counters of the dynamic bench's query phase.
DYNAMIC_INVALIDATION_KEYS = (
    "graph_updates",
    "update_edges_applied",
    "roots_invalidated",
    "roots_retained",
    "points_invalidated",
    "points_retained",
    "memo_invalidated",
    "slices_refreshed",
    "wholesale_flushes",
    "version_misses",
)
DYNAMIC_POINT_KEYS = ("persisted", "restored")
# weak_scaling.ooc: the out-of-core demonstration (docs/out_of_core.md) —
# bit-identity of the pipelined sharded build, then a scale step under a
# resident cap the in-memory builder cannot satisfy.
OOC_IDENTITY_KEYS = ("scale", "ranks", "roots", "bit_identical",
                     "build_pipeline")
OOC_CAP_KEYS = (
    "scale",
    "ranks",
    "cap_bytes",
    "inmemory_estimate_bytes",
    "infeasible_in_memory",
    "peak_resident_bytes",
    "under_cap",
    "sssp_seconds",
    "sssp_teps",
    "valid",
    "residency",
    "build_pipeline",
)
OOC_PIPELINE_KEYS = (
    "bin",
    "sort",
    "pack",
    "runs_spilled",
    "spilled_bytes",
    "shard_bytes",
    "peak_resident_bytes",
    "budget_bytes",
    "total_seconds",
)
OOC_STAGE_KEYS = ("edges", "bytes", "seconds", "meps")
OOC_RESIDENCY_KEYS = ("backing", "resident_bytes", "mapped_bytes")
# breakdown.async: the gated async-vs-sync comparison (docs/async.md) —
# distances must be bit-identical with strictly fewer global collectives.
BREAKDOWN_ASYNC_KEYS = (
    "sync_collectives",
    "async_collectives",
    "fewer_collectives",
    "bit_identical",
    "flush_capacity",
    "flush_timeout",
    "p2p_bytes",
)
# replay.async: the barrier-free recording priced by replay_async_trace —
# the near-empty collective log plus the aggregated parcel stream.
REPLAY_ASYNC_KEYS = (
    "collective_rounds",
    "sync_rounds",
    "p2p",
    "replay",
    "critical_path_speedup",
)
REPLAY_P2P_KEYS = (
    "flushes",
    "messages",
    "bytes",
    "max_rank_bytes",
    "flush_capacity",
    "flush_timeout",
)


def check_trace(doc, path, errors):
    for key in TRACE_KEYS:
        if key not in doc:
            errors.append(f"{path}: missing trace key '{key}'")
    events = doc.get("traceEvents", [])
    if not isinstance(events, list) or not events:
        errors.append(f"{path}: traceEvents must be a non-empty array")
        return
    for i, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{path}: traceEvents[{i}] missing '{key}'")
        if event.get("ph") == "X":
            for key in ("ts", "dur", "args"):
                if key not in event:
                    errors.append(f"{path}: traceEvents[{i}] missing '{key}'")


def check_report(doc, path, errors):
    for key in ENVELOPE_KEYS:
        if key not in doc:
            errors.append(f"{path}: missing envelope key '{key}'")
    if not isinstance(doc.get("schema_version"), int):
        errors.append(f"{path}: schema_version must be an integer")
    manifest = doc.get("manifest", {})
    for key in MANIFEST_KEYS:
        if key not in manifest:
            errors.append(f"{path}: manifest missing '{key}'")
    if not isinstance(doc.get("cases"), list):
        errors.append(f"{path}: cases must be an array")
    if doc.get("harness") == "serving":
        check_serving(doc, path, errors)
    if doc.get("harness") == "dynamic":
        check_dynamic(doc, path, errors)
    if doc.get("harness") == "breakdown":
        check_breakdown_async(doc, path, errors)
    if doc.get("harness") == "replay":
        check_replay_async(doc, path, errors)
    if doc.get("harness") == "weak_scaling" and "ooc" in doc:
        check_ooc(doc, path, errors)


def check_ooc_pipeline(pipeline, where, path, errors):
    if not isinstance(pipeline, dict):
        errors.append(f"{path}: {where} missing 'build_pipeline'")
        return
    for key in OOC_PIPELINE_KEYS:
        if key not in pipeline:
            errors.append(f"{path}: {where} build_pipeline missing '{key}'")
    for stage in ("bin", "sort", "pack"):
        block = pipeline.get(stage)
        if not isinstance(block, dict):
            continue
        for key in OOC_STAGE_KEYS:
            if key not in block:
                errors.append(
                    f"{path}: {where} build_pipeline.{stage} missing '{key}'")


def check_ooc(doc, path, errors):
    ooc = doc.get("ooc")
    if not isinstance(ooc, dict):
        errors.append(f"{path}: weak_scaling report 'ooc' is not an object")
        return
    identity = ooc.get("identity")
    if not isinstance(identity, dict):
        errors.append(f"{path}: ooc section missing 'identity'")
    else:
        for key in OOC_IDENTITY_KEYS:
            if key not in identity:
                errors.append(f"{path}: ooc identity missing '{key}'")
        if identity.get("bit_identical") is not True:
            errors.append(
                f"{path}: sharded build not bit_identical to in-memory build")
        check_ooc_pipeline(identity.get("build_pipeline"), "ooc identity",
                           path, errors)
    cap = ooc.get("cap_step")
    if not isinstance(cap, dict):
        errors.append(f"{path}: ooc section missing 'cap_step'")
        return
    for key in OOC_CAP_KEYS:
        if key not in cap:
            errors.append(f"{path}: ooc cap_step missing '{key}'")
    for gate in ("infeasible_in_memory", "under_cap", "valid"):
        if cap.get(gate) is not True:
            errors.append(f"{path}: ooc cap_step gate '{gate}' did not pass")
    residency = cap.get("residency")
    if isinstance(residency, dict):
        for key in OOC_RESIDENCY_KEYS:
            if key not in residency:
                errors.append(f"{path}: ooc cap_step residency missing '{key}'")
        if residency.get("resident_bytes") not in (0,):
            errors.append(
                f"{path}: ooc cap_step graph not fully mapped "
                f"(resident_bytes != 0)")
    check_ooc_pipeline(cap.get("build_pipeline"), "ooc cap_step", path, errors)


def check_dynamic(doc, path, errors):
    dyn = doc.get("dynamic")
    if not isinstance(dyn, dict):
        errors.append(f"{path}: dynamic report missing 'dynamic' section")
        return
    for key in DYNAMIC_KEYS:
        if key not in dyn:
            errors.append(f"{path}: dynamic section missing '{key}'")
    if dyn.get("bit_identical") is not True:
        errors.append(
            f"{path}: incremental repair not bit_identical to recompute")
    if dyn.get("repair_ok") is not True:
        errors.append(f"{path}: dynamic repair gate did not pass (repair_ok)")
    ratio = dyn.get("work_ratio")
    if isinstance(ratio, (int, float)) and not ratio < 1:
        errors.append(
            f"{path}: repair work_ratio {ratio} not strictly below 1 "
            f"(repair must beat recompute on localized batches)")
    inval = dyn.get("invalidation")
    if isinstance(inval, dict):
        for key in DYNAMIC_INVALIDATION_KEYS:
            if key not in inval:
                errors.append(f"{path}: dynamic invalidation missing '{key}'")
    point = dyn.get("point_persistence")
    if isinstance(point, dict):
        for key in DYNAMIC_POINT_KEYS:
            if key not in point:
                errors.append(
                    f"{path}: dynamic point_persistence missing '{key}'")


def check_breakdown_async(doc, path, errors):
    async_doc = doc.get("async")
    if not isinstance(async_doc, dict):
        errors.append(f"{path}: breakdown report missing 'async' section")
        return
    for key in BREAKDOWN_ASYNC_KEYS:
        if key not in async_doc:
            errors.append(f"{path}: breakdown async missing '{key}'")
    if async_doc.get("bit_identical") is not True:
        errors.append(f"{path}: async distances not bit_identical")
    if async_doc.get("fewer_collectives") is not True:
        errors.append(f"{path}: async did not issue fewer collectives")


def check_replay_async(doc, path, errors):
    async_doc = doc.get("async")
    if not isinstance(async_doc, dict):
        errors.append(f"{path}: replay report missing 'async' section")
        return
    for key in REPLAY_ASYNC_KEYS:
        if key not in async_doc:
            errors.append(f"{path}: replay async missing '{key}'")
    p2p = async_doc.get("p2p", {})
    if isinstance(p2p, dict):
        for key in REPLAY_P2P_KEYS:
            if key not in p2p:
                errors.append(f"{path}: replay async p2p missing '{key}'")


def check_serving_run(run, where, path, errors):
    """One serving run dict: engine-work counters plus the availability block."""
    for key in SERVING_RUN_KEYS:
        if key not in run:
            errors.append(f"{path}: {where} missing '{key}'")
    avail = run.get("availability")
    if not isinstance(avail, dict):
        return
    for key in SERVING_AVAILABILITY_KEYS:
        if key not in avail:
            errors.append(f"{path}: {where} availability missing '{key}'")


def check_serving_chaos(serving, path, errors):
    chaos = serving.get("chaos")
    if not isinstance(chaos, dict):
        errors.append(f"{path}: serving section missing 'chaos'")
        return
    for key in SERVING_CHAOS_KEYS:
        if key not in chaos:
            errors.append(f"{path}: serving chaos missing '{key}'")
    if chaos.get("chaos_ok") is not True:
        errors.append(f"{path}: serving chaos sweep did not pass (chaos_ok)")
    if chaos.get("exact_bit_identical") is not True:
        errors.append(f"{path}: chaos exact answers not bit_identical")
    floor = chaos.get("avail_floor")
    avail = chaos.get("availability")
    if isinstance(floor, (int, float)) and isinstance(avail, (int, float)):
        if avail < floor:
            errors.append(
                f"{path}: chaos availability {avail} below floor {floor}")
    for mode in ("reference", "faulted", "restart"):
        run = chaos.get(mode)
        if isinstance(run, dict):
            check_serving_run(run, f"serving chaos.{mode}", path, errors)


def check_serving_classes(metrics, where, path, errors):
    """Per-class SLO block and point-cache counters of a metrics dict."""
    classes = metrics.get("classes")
    if not isinstance(classes, dict):
        errors.append(f"{path}: {where} missing 'classes'")
    else:
        for cls in ("distance", "analytics"):
            block = classes.get(cls)
            if not isinstance(block, dict):
                errors.append(f"{path}: {where} classes missing '{cls}'")
                continue
            for key in SERVING_CLASS_KEYS:
                if key not in block:
                    errors.append(
                        f"{path}: {where} classes.{cls} missing '{key}'")
            latency = block.get("latency_ticks", {})
            if isinstance(latency, dict):
                for key in SERVING_LATENCY_KEYS:
                    if key not in latency:
                        errors.append(
                            f"{path}: {where} classes.{cls} latency_ticks "
                            f"missing '{key}'")
    point = metrics.get("point_cache")
    if not isinstance(point, dict):
        errors.append(f"{path}: {where} missing 'point_cache'")
        return
    for key in SERVING_POINT_CACHE_KEYS:
        if key not in point:
            errors.append(f"{path}: {where} point_cache missing '{key}'")


def check_serving_mixed(serving, path, errors):
    mixed = serving.get("mixed")
    if not isinstance(mixed, dict):
        errors.append(f"{path}: serving section missing 'mixed'")
        return
    for key in SERVING_MIXED_KEYS:
        if key not in mixed:
            errors.append(f"{path}: serving mixed missing '{key}'")
    if mixed.get("kernels_validated") is not True:
        errors.append(
            f"{path}: mixed-workload kernels not validated against the "
            f"sequential references (kernels_validated)")
    kernels = mixed.get("kernels", {})
    if isinstance(kernels, dict):
        for name in SERVING_MIXED_KERNELS:
            block = kernels.get(name)
            if not isinstance(block, dict):
                errors.append(f"{path}: mixed kernels missing '{name}'")
                continue
            if block.get("match") is not True:
                errors.append(
                    f"{path}: mixed kernel '{name}' digest does not match "
                    f"its sequential reference")
    run = mixed.get("run")
    if isinstance(run, dict):
        check_serving_run(run, "serving mixed run", path, errors)
        metrics = run.get("metrics")
        if isinstance(metrics, dict):
            check_serving_classes(metrics, "serving mixed run metrics",
                                  path, errors)


def check_serving(doc, path, errors):
    serving = doc.get("serving")
    if not isinstance(serving, dict):
        errors.append(f"{path}: serving report missing 'serving' section")
        return
    for key in SERVING_KEYS:
        if key not in serving:
            errors.append(f"{path}: serving section missing '{key}'")
    latency = serving.get("latency_ticks", {})
    for key in SERVING_LATENCY_KEYS:
        if key not in latency:
            errors.append(f"{path}: serving latency_ticks missing '{key}'")
    cache = serving.get("cache", {})
    for key in SERVING_CACHE_KEYS:
        if key not in cache:
            errors.append(f"{path}: serving cache missing '{key}'")
    run = serving.get("run")
    if isinstance(run, dict):
        check_serving_run(run, "serving run", path, errors)
    oracle = serving.get("oracle")
    if not isinstance(oracle, dict):
        errors.append(f"{path}: serving section missing 'oracle'")
    else:
        for key in SERVING_ORACLE_KEYS:
            if key not in oracle:
                errors.append(f"{path}: serving oracle missing '{key}'")
        for mode in ("off", "on"):
            run = oracle.get(mode)
            if isinstance(run, dict):
                check_serving_run(run, f"serving oracle.{mode}", path, errors)
        if oracle.get("bit_identical") is not True:
            errors.append(f"{path}: serving oracle answers not bit_identical")
    adaptive = serving.get("adaptive")
    if not isinstance(adaptive, dict):
        errors.append(f"{path}: serving section missing 'adaptive'")
    else:
        for key in SERVING_ADAPTIVE_KEYS:
            if key not in adaptive:
                errors.append(f"{path}: serving adaptive missing '{key}'")
    check_serving_chaos(serving, path, errors)
    check_serving_mixed(serving, path, errors)


def check_file(path, errors):
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        errors.append(f"{path}: unreadable or invalid JSON ({exc})")
        return
    # Chrome traces (BENCH_*_trace.json) use the trace_event layout.
    if path.name.endswith("_trace.json"):
        check_trace(doc, path, errors)
    else:
        check_report(doc, path, errors)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        else:
            files.append(p)
    if not files:
        print("error: no BENCH_*.json files found", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        check_file(path, errors)
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} report(s), {len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
