// R1 — Checkpoint overhead and crash-recovery drill.
//
// Two questions a resilient record run must answer before committing to a
// checkpoint interval: (1) what fraction of the solve time do bucket-epoch
// snapshots cost, and (2) how much work does a mid-run rank crash waste
// when the sweep restarts from the last snapshot instead of from scratch.
// Part one sweeps the interval; part two plants an injected crash two
// thirds into the sweep and re-runs from the surviving snapshots, checking
// the recovered distances bit-for-bit against an undisturbed run.
#include <iostream>

#include "bench_util.hpp"
#include "core/checkpoint.hpp"
#include "simmpi/fault.hpp"
#include "util/backoff.hpp"
#include "util/options.hpp"

namespace {

using namespace g500;

struct CkptMeasurement {
  double seconds = 0.0;            // wall time per SSSP, max over ranks
  core::SsspStats stats;           // aggregated (global_stats)
};

CkptMeasurement measure_checkpointed(const graph::KroneckerParams& params,
                                     int ranks, const core::SsspConfig& config,
                                     int roots_count) {
  simmpi::World world(ranks);
  CkptMeasurement m;
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    const auto roots = core::sample_roots(comm, g, roots_count, 0x9500);
    double seconds = 0.0;
    core::SsspStats merged;
    for (const auto root : roots) {
      core::CheckpointState ckpt;
      core::SsspStats local;
      comm.barrier();
      util::Timer timer;
      (void)core::delta_stepping_checkpointed(comm, g, root, config, &ckpt,
                                              &local);
      comm.barrier();
      seconds += comm.allreduce_max(timer.seconds());
      merged.merge(local);
    }
    const auto total = core::global_stats(comm, merged);
    if (comm.rank() == 0) {
      m.seconds = seconds / static_cast<double>(roots.size());
      m.stats = total;
    }
    comm.barrier();
  });
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g500;
  using graph::VertexId;
  using graph::Weight;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 13));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int roots = static_cast<int>(options.get_int("roots", 4));
  const double delta = options.get_double("delta", 0.02);

  graph::KroneckerParams params;
  params.scale = scale;

  core::SsspConfig base;
  base.delta = delta;  // narrow buckets: many epochs, so intervals matter

  // ---- Part 1: checkpoint overhead as a function of the interval -------
  bench::RunReport report("recovery", options);
  const std::uint64_t intervals[] = {0, 1, 2, 4, 8, 16};
  util::Table table({"interval", "seconds", "checkpoints", "ckpt seconds",
                     "overhead", "slowdown"});
  double baseline_seconds = 0.0;
  for (const auto interval : intervals) {
    core::SsspConfig config = base;
    config.checkpoint_interval = interval;
    const auto m = measure_checkpointed(params, ranks, config, roots);
    if (interval == 0) baseline_seconds = m.seconds;
    const double per_root_ckpt_seconds =
        m.stats.checkpoint_seconds / static_cast<double>(roots);
    table.row()
        .add(interval == 0 ? std::string("off")
                           : std::to_string(interval))
        .add(m.seconds, 4)
        .add(m.stats.checkpoints / static_cast<std::uint64_t>(roots))
        .add(per_root_ckpt_seconds, 4)
        .add(m.seconds > 0.0 ? per_root_ckpt_seconds / m.seconds : 0.0, 4)
        .add(baseline_seconds > 0.0 ? m.seconds / baseline_seconds : 0.0, 3);
    util::Json c = util::Json::object();
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["checkpoint_interval"] = interval;
    c["seconds"] = m.seconds;
    c["checkpoint_seconds_per_root"] = per_root_ckpt_seconds;
    c["overhead"] =
        m.seconds > 0.0 ? per_root_ckpt_seconds / m.seconds : 0.0;
    c["slowdown"] =
        baseline_seconds > 0.0 ? m.seconds / baseline_seconds : 0.0;
    c["sssp_stats"] = core::to_json(m.stats);
    report.add_case(std::move(c));
  }
  table.print(std::cout,
              "R1a: checkpoint overhead per SSSP, scale " +
                  std::to_string(scale) + ", " + std::to_string(ranks) +
                  " ranks, delta " + std::to_string(delta));
  std::cout << "\n'overhead' is checkpoint_seconds / run seconds; 'slowdown' "
               "is wall time versus\ncheckpointing off.  Sparse intervals "
               "amortize the snapshot cost toward zero.\n\n";

  // ---- Part 2: crash-recovery drill ------------------------------------
  core::SsspConfig drill = base;
  drill.checkpoint_interval = 4;

  // Clean reference run (also provides the bit-identity baseline).
  std::vector<Weight> reference;
  double clean_seconds = 0.0;
  VertexId root = 0;
  {
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const auto g = graph::build_kronecker(comm, params);
      const auto sampled = core::sample_roots(comm, g, 1, 0x9500);
      if (sampled.empty()) throw std::runtime_error("no eligible roots");
      comm.barrier();
      util::Timer timer;
      const auto result = core::delta_stepping(comm, g, sampled[0], drill);
      const double t = comm.allreduce_max(timer.seconds());
      const auto whole = core::gather_result(comm, g, result);
      if (comm.rank() == 0) {
        root = sampled[0];
        reference = whole.dist;
        clean_seconds = t;
      }
    });
  }

  // Probe the victim's collective count so the crash lands two thirds
  // into the sweep (the probe builds the graph twice; a real attempt
  // builds once, so its sweep spans [build, build + sweep)).
  const int victim = ranks > 1 ? 1 : 0;
  std::uint64_t build_calls = 0;
  std::uint64_t total_calls = 0;
  {
    simmpi::World probe(ranks);
    probe.set_fault_plan(simmpi::FaultPlan{});
    probe.run([&](simmpi::Comm& comm) {
      (void)graph::build_kronecker(comm, params);
      (void)comm.allreduce_sum(1);  // stand-in for the root sample
    });
    build_calls = probe.injector()->collective_calls(victim);
    probe.run([&](simmpi::Comm& comm) {
      const auto g = graph::build_kronecker(comm, params);
      (void)core::sample_roots(comm, g, 1, 0x9500);
      core::CheckpointState ckpt;
      (void)core::delta_stepping_checkpointed(comm, g, root, drill, &ckpt);
    });
    total_calls = probe.injector()->collective_calls(victim);
  }
  const std::uint64_t sweep_calls = total_calls - 2 * build_calls;
  const std::uint64_t crash_at = build_calls + sweep_calls * 2 / 3;

  simmpi::World world(ranks);
  const simmpi::FaultPlan plan = simmpi::FaultPlan{}.crash(victim, crash_at);
  world.set_fault_plan(plan);
  std::vector<core::CheckpointState> snapshots(
      static_cast<std::size_t>(ranks));

  double wasted_seconds = 0.0;
  double recovery_seconds = 0.0;
  core::SsspStats recovery_stats;
  std::vector<Weight> recovered;
  bool crashed = false;

  const auto attempt = [&](std::vector<Weight>* out,
                           core::SsspStats* out_stats, double* out_seconds) {
    world.run([&](simmpi::Comm& comm) {
      const auto g = graph::build_kronecker(comm, params);
      (void)core::sample_roots(comm, g, 1, 0x9500);
      core::SsspStats local;
      comm.barrier();
      util::Timer timer;
      const auto result = core::delta_stepping_checkpointed(
          comm, g, root, drill,
          &snapshots[static_cast<std::size_t>(comm.rank())], &local);
      const double t = comm.allreduce_max(timer.seconds());
      const auto whole = core::gather_result(comm, g, result);
      if (comm.rank() == 0) {
        if (out != nullptr) *out = whole.dist;
        if (out_stats != nullptr) *out_stats = local;
        if (out_seconds != nullptr) *out_seconds = t;
      }
    });
  };

  // Retries are paced by the shared backoff policy (util/backoff.hpp) so
  // the drill charges the same simulated pause the resilient drivers do.
  util::BackoffPolicy backoff;
  backoff.base_seconds = 0.05;
  backoff.seed = 0x9500;
  double backoff_seconds = 0.0;

  util::Timer failed_attempt;
  try {
    attempt(nullptr, nullptr, nullptr);
  } catch (const simmpi::InjectedCrashError&) {
    crashed = true;
    wasted_seconds = failed_attempt.seconds();
  }
  if (crashed) {
    backoff_seconds = backoff.delay(1);
    attempt(&recovered, &recovery_stats, &recovery_seconds);
  }

  util::Table drill_table({"quantity", "value"});
  drill_table.row().add("root").add(static_cast<std::uint64_t>(root));
  drill_table.row().add("crash at collective").add(crash_at);
  drill_table.row().add("crash fired").add(crashed ? "yes" : "NO");
  drill_table.row().add("clean run seconds").add(clean_seconds, 4);
  drill_table.row().add("wasted attempt seconds").add(wasted_seconds, 4);
  drill_table.row().add("backoff seconds (virtual)").add(backoff_seconds, 4);
  drill_table.row().add("recovery run seconds").add(recovery_seconds, 4);
  drill_table.row().add("restores").add(recovery_stats.restores);
  drill_table.row()
      .add("buckets after restore")
      .add(recovery_stats.buckets_processed);
  drill_table.row()
      .add("bit-identical distances")
      .add(!recovered.empty() && recovered == reference ? "yes" : "NO");
  drill_table.print(std::cout, "R1b: crash-recovery drill, interval 4");
  std::cout << "\nExpected shape: the recovery run restores from the last "
               "snapshot and re-drains only\nthe tail of the bucket "
               "schedule, so it runs faster than the clean sweep while\n"
               "producing bit-identical distances.\n";

  util::Json drill_json = util::Json::object();
  drill_json["root"] = static_cast<std::uint64_t>(root);
  drill_json["fault_plan"] = simmpi::to_json(plan);
  drill_json["crash_fired"] = crashed;
  drill_json["clean_seconds"] = clean_seconds;
  drill_json["wasted_seconds"] = wasted_seconds;
  drill_json["backoff_seconds"] = backoff_seconds;
  drill_json["recovery_seconds"] = recovery_seconds;
  drill_json["restores"] = recovery_stats.restores;
  drill_json["buckets_after_restore"] = recovery_stats.buckets_processed;
  drill_json["bit_identical"] = !recovered.empty() && recovered == reference;
  report.doc()["drill"] = std::move(drill_json);
  bench::write_report(report, table);
  return (!crashed || recovered != reference) ? 1 : 0;
}
