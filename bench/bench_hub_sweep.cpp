// F11 (design-choice ablation) — hub cache sizing.
//
// Replicating the top-H vertices costs O(H) state per rank plus an
// H-float min-allreduce per bucket; the benefit is the fraction of
// relaxation traffic filtered before it reaches the wire.  On power-law
// graphs the filterable mass concentrates in very few hubs, so the curve
// saturates quickly — the reason the record configuration replicates only
// a sliver of the vertex set.
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));

  graph::KroneckerParams params;
  params.scale = scale;

  bench::RunReport report("hub_sweep", options);
  util::Table table({"hubs", "hub-filtered", "filtered %", "wire bytes",
                     "sync bytes/bucket", "time (s)"});
  for (const std::size_t hubs : {0UL, 4UL, 16UL, 64UL, 256UL, 1024UL}) {
    graph::BuildOptions build;
    build.hub_count = hubs;
    core::SsspConfig config = core::SsspConfig::plain();
    config.coalesce = true;
    config.hub_cache = hubs > 0;
    const auto m =
        bench::measure_sssp(params, ranks, config, 1,
                            core::Algorithm::kDeltaStepping, false, build);
    const double generated =
        static_cast<double>(std::max<std::uint64_t>(1, m.stats.relax_generated));
    table.row()
        .add(static_cast<std::uint64_t>(hubs))
        .add_si(static_cast<double>(m.stats.filtered_hub))
        .add(100.0 * static_cast<double>(m.stats.filtered_hub) / generated, 1)
        .add_si(static_cast<double>(m.wire_bytes))
        .add_si(static_cast<double>(hubs) * sizeof(float) *
                static_cast<double>(ranks))
        .add(m.seconds, 4);
    util::Json c = util::Json::object();
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["hubs"] = static_cast<std::uint64_t>(hubs);
    c["filtered_percent"] =
        100.0 * static_cast<double>(m.stats.filtered_hub) / generated;
    c["sync_bytes_per_bucket"] = static_cast<double>(hubs) * sizeof(float) *
                                 static_cast<double>(ranks);
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
  }
  table.print(std::cout, "F11: hub cache size sweep, Kronecker scale " +
                             std::to_string(scale) + ", " +
                             std::to_string(ranks) + " ranks");
  std::cout << "\nExpected shape: the filtered fraction rises steeply for "
               "the first few hubs and\nsaturates (power-law mass "
               "concentration), while the per-bucket sync cost grows\n"
               "linearly in H — the optimum replicates a tiny prefix.\n";
  bench::write_report(report, table);
  return 0;
}
