// F1 — Strong scaling: fixed graph, growing rank count.
//
// The paper's strong-scaling figure: time per SSSP and speedup as ranks
// double on a fixed-scale Kronecker graph.  (All ranks share one host CPU
// here, so wall-clock speedup saturates; the scalable signals are the
// per-rank work and traffic columns, which is exactly what the analytic
// model consumes.)
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 15));
  const int roots = static_cast<int>(options.get_int("roots", 2));

  graph::KroneckerParams params;
  params.scale = scale;

  bench::RunReport report("strong_scaling", options);
  util::Table table({"ranks", "time (s)", "TEPS", "wire bytes", "rounds",
                     "relax/rank", "valid"});
  double base_relax_per_rank = 0.0;
  for (int ranks : {1, 2, 4, 8, 16, 32}) {
    const auto m = bench::measure_sssp(params, ranks, core::SsspConfig{},
                                       roots);
    const double relax_per_rank = static_cast<double>(m.stats.relax_sent) /
                                  static_cast<double>(ranks);
    if (ranks == 1) base_relax_per_rank = relax_per_rank;
    (void)base_relax_per_rank;
    table.row()
        .add(ranks)
        .add(m.seconds, 4)
        .add_si(m.teps)
        .add_si(static_cast<double>(m.wire_bytes))
        .add(m.rounds)
        .add_si(relax_per_rank)
        .add(m.valid ? "yes" : "NO");
    util::Json c = util::Json::object();
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["relax_per_rank"] = relax_per_rank;
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
  }
  table.print(std::cout, "F1: strong scaling, Kronecker scale " +
                             std::to_string(scale));
  bench::write_report(report, table);
  std::cout << "\nExpected shape: per-rank work halves as ranks double; "
               "round count stays ~flat;\nwall time on this single-CPU host "
               "saturates (ranks share one core).\n";
  return 0;
}
