// F9 (extension) — Graph 500 BFS kernel.
//
// The SSSP record builds on the group's 281-trillion-edge BFS work; this
// harness runs the direction-optimizing BFS on the same substrate: GTEPS
// per scale, and the direction-optimization payoff (edges scanned with and
// without bottom-up rounds).
#include <iostream>

#include "bench_util.hpp"
#include "core/bfs.hpp"
#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int max_scale = static_cast<int>(options.get_int("max-scale", 16));

  bench::RunReport report("bfs", options);
  util::Table table({"scale", "mode", "rounds", "bottom-up", "edges scanned",
                     "time (s)", "GTEPS", "valid"});
  for (int scale = 12; scale <= max_scale; scale += 2) {
    graph::KroneckerParams params;
    params.scale = scale;
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const graph::DistGraph g = graph::build_kronecker(comm, params);
      const auto roots = core::sample_roots(comm, g, 2, 0x9500);
      for (const bool direction : {false, true}) {
        core::BfsConfig config;
        config.direction_opt = direction;
        double seconds = 0.0;
        core::BfsStats accumulated;
        bool valid = true;
        for (const auto root : roots) {
          core::BfsStats stats;
          comm.barrier();
          util::Timer timer;
          const auto mine = core::bfs(comm, g, root, config, &stats);
          comm.barrier();
          seconds += comm.allreduce_max(timer.seconds());
          accumulated.rounds += stats.rounds;
          accumulated.bottom_up_rounds += stats.bottom_up_rounds;
          accumulated.edges_scanned +=
              comm.allreduce_sum(stats.edges_scanned);
          valid = valid && core::validate_bfs(comm, g, root, mine).ok;
        }
        seconds /= static_cast<double>(roots.size());
        if (comm.rank() == 0) {
          table.row()
              .add(scale)
              .add(direction ? "direction-opt" : "top-down")
              .add(accumulated.rounds / roots.size())
              .add(accumulated.bottom_up_rounds / roots.size())
              .add_si(static_cast<double>(accumulated.edges_scanned) /
                      static_cast<double>(roots.size()))
              .add(seconds, 4)
              .add(static_cast<double>(g.num_input_edges) / seconds / 1e9, 4)
              .add(valid ? "yes" : "NO");
          util::Json c = util::Json::object();
          c["scale"] = scale;
          c["ranks"] = ranks;
          c["mode"] = direction ? "direction-opt" : "top-down";
          c["rounds"] = accumulated.rounds / roots.size();
          c["bottom_up_rounds"] = accumulated.bottom_up_rounds / roots.size();
          c["edges_scanned"] = static_cast<double>(accumulated.edges_scanned) /
                               static_cast<double>(roots.size());
          c["seconds"] = seconds;
          c["gteps"] =
              static_cast<double>(g.num_input_edges) / seconds / 1e9;
          c["valid"] = valid;
          report.add_case(std::move(c));
        }
      }
    });
  }
  table.print(std::cout, "F9: Graph500 BFS kernel (direction optimization)");
  std::cout << "\nExpected shape: direction-opt rows scan a fraction of the "
               "top-down edges on\npower-law graphs (the Beamer effect) at "
               "equal validity.\n";
  bench::write_report(report, table);
  return 0;
}
