// F2 — Weak scaling: the graph grows with the machine.
//
// scale = base + log2(ranks): each rank keeps a constant share of edges,
// mirroring how the record entry filled the machine.  The figure of merit
// is TEPS per rank (flat = perfect weak scaling) plus the traffic metrics
// that the projection model extrapolates from.
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int base_scale = static_cast<int>(options.get_int("base-scale", 12));
  const int roots = static_cast<int>(options.get_int("roots", 2));

  bench::RunReport report("weak_scaling", options);
  util::Table table({"ranks", "scale", "input edges", "time (s)", "TEPS",
                     "bytes/edge", "rounds", "valid"});
  for (int doubling = 0; doubling <= 5; ++doubling) {
    const int ranks = 1 << doubling;
    graph::KroneckerParams params;
    params.scale = base_scale + doubling;
    const auto m = bench::measure_sssp(params, ranks, core::SsspConfig{},
                                       roots);
    table.row()
        .add(ranks)
        .add(params.scale)
        .add(params.num_edges())
        .add(m.seconds, 4)
        .add_si(m.teps)
        .add(static_cast<double>(m.wire_bytes) /
                 static_cast<double>(params.num_edges()),
             3)
        .add(m.rounds)
        .add(m.valid ? "yes" : "NO");
    util::Json c = util::Json::object();
    c["scale"] = params.scale;
    c["ranks"] = ranks;
    c["input_edges"] = params.num_edges();
    c["bytes_per_edge"] = static_cast<double>(m.wire_bytes) /
                          static_cast<double>(params.num_edges());
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
  }
  table.print(std::cout, "F2: weak scaling (scale grows with ranks)");
  bench::write_report(report, table);
  std::cout << "\nExpected shape: bytes/edge stays bounded (hub+coalesce "
               "filtering), rounds grow\nslowly (~ +1 bucket per scale), so "
               "modeled weak scaling is near-flat.\n";
  return 0;
}
