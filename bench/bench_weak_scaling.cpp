// F2 — Weak scaling: the graph grows with the machine.
//
// scale = base + log2(ranks): each rank keeps a constant share of edges,
// mirroring how the record entry filled the machine.  The figure of merit
// is TEPS per rank (flat = perfect weak scaling) plus the traffic metrics
// that the projection model extrapolates from.
//
// --ooc adds the out-of-core demonstration (docs/out_of_core.md): first a
// bit-identity gate (pipelined sharded build vs in-memory build: CSR
// arrays, hubs and SSSP distances must match byte for byte), then a scale
// step under a resident-memory cap the in-memory builder provably cannot
// satisfy, run entirely from mmap'd shards.  Any gate failure exits
// non-zero — this is the regression harness for src/ooc.
#include <cstring>
#include <filesystem>
#include <iostream>

#include "bench_util.hpp"
#include "core/graph_view.hpp"
#include "graph/shard.hpp"
#include "ooc/pipeline.hpp"
#include "util/options.hpp"

namespace {

using namespace g500;

template <typename T>
bool spans_equal(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// Byte-compare every array the two graphs expose to the engines.
bool graphs_identical(const graph::DistGraph& a, const graph::DistGraph& b) {
  return spans_equal(a.csr.offsets(), b.csr.offsets()) &&
         spans_equal(a.csr.adjacency(), b.csr.adjacency()) &&
         spans_equal(a.csr.weights(), b.csr.weights()) &&
         spans_equal(a.pull.sources(), b.pull.sources()) &&
         spans_equal(a.pull.offsets(), b.pull.offsets()) &&
         spans_equal(a.pull.destinations(), b.pull.destinations()) &&
         spans_equal(a.pull.weights(), b.pull.weights()) &&
         a.hubs == b.hubs && a.hub_degrees == b.hub_degrees &&
         a.num_input_edges == b.num_input_edges &&
         a.num_directed_edges == b.num_directed_edges;
}

bool results_identical(const core::SsspResult& a, const core::SsspResult& b) {
  return a.dist.size() == b.dist.size() &&
         (a.dist.empty() ||
          std::memcmp(a.dist.data(), b.dist.data(),
                      a.dist.size() * sizeof(graph::Weight)) == 0);
}

/// The --ooc phase.  Returns 0 when every gate holds.
int run_ooc_phase(const util::Options& options, bench::RunReport& report,
                  int base_scale, int roots) {
  namespace fs = std::filesystem;
  const int ranks = static_cast<int>(options.get_int("ooc-ranks", 4));
  const int cap_scale =
      static_cast<int>(options.get_int("ooc-scale", base_scale + 3));
  const std::uint64_t cap_bytes = static_cast<std::uint64_t>(
      options.get_int("ooc-budget-kb", 2048)) * 1024;
  const std::uint64_t chunk_edges =
      static_cast<std::uint64_t>(options.get_int("ooc-chunk-edges", 4096));
  std::string dir = options.get("ooc-dir", "");
  if (dir.empty()) {
    dir = (fs::temp_directory_path() / "g500_ooc_weak_scaling").string();
  }
  fs::remove_all(dir);

  util::Json ooc = util::Json::object();
  bool identical = false;
  bool cap_valid = false;
  bool under_cap = false;
  bool infeasible_in_memory = false;

  // Gate 1: bit identity at the base scale — shards written by the
  // pipeline must reproduce the in-memory build exactly, down to the SSSP
  // distance bits.
  {
    graph::KroneckerParams params;
    params.scale = base_scale;
    ooc::PipelineOptions popts;
    popts.chunk_edges = chunk_edges;
    popts.scratch_dir = dir + "/identity";
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const graph::DistGraph g_mem = graph::build_kronecker(comm, params);
      const auto pstats = ooc::build_sharded_kronecker(
          comm, params, dir + "/identity", popts);
      const graph::DistGraph g_map =
          graph::load_sharded(comm, dir + "/identity");
      bool same = graphs_identical(g_mem, g_map) &&
                  g_map.backing == graph::GraphBacking::kMapped;
      const auto sample = core::sample_roots(comm, g_mem, roots, 0x9500);
      for (const auto root : sample) {
        const auto a = core::delta_stepping(comm, g_mem, root, {});
        const auto b = core::delta_stepping(comm, g_map, root, {});
        same = same && results_identical(a, b);
      }
      const bool all_same = !comm.allreduce_or(!same);
      if (comm.rank() == 0) {
        identical = all_same;
        ooc["identity"] = util::Json::object();
        ooc["identity"]["scale"] = params.scale;
        ooc["identity"]["ranks"] = ranks;
        ooc["identity"]["roots"] = static_cast<std::int64_t>(sample.size());
        ooc["identity"]["bit_identical"] = all_same;
        ooc["identity"]["build_pipeline"] = ooc::to_json(pstats);
      }
      comm.barrier();
    });
  }

  // Gate 2: one scale step under a resident cap the in-memory build
  // cannot satisfy.  The pipeline itself throws if it overruns the cap;
  // the mapped graph then serves a validated SSSP.
  {
    graph::KroneckerParams params;
    params.scale = cap_scale;
    const std::uint64_t estimate =
        core::estimate_inmemory_build_bytes(params, ranks);
    infeasible_in_memory = estimate > cap_bytes;
    ooc::PipelineOptions popts;
    popts.resident_budget_bytes = cap_bytes;
    popts.chunk_edges = chunk_edges;
    popts.scratch_dir = dir + "/cap";
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const auto pstats = ooc::build_sharded_kronecker(
          comm, params, dir + "/cap", popts);
      const graph::DistGraph g = graph::load_sharded(comm, dir + "/cap");
      const auto residency = core::graph_residency(g);
      const auto sample = core::sample_roots(comm, g, 1, 0x9500);
      bool ok = true;
      util::Timer timer;
      const auto result = core::delta_stepping(comm, g, sample.front(), {});
      const double seconds = comm.allreduce_max(timer.seconds());
      const auto verdict = core::validate_sssp(comm, g, sample.front(), result);
      ok = verdict.ok &&
           residency.backing == graph::GraphBacking::kMapped &&
           residency.resident_bytes == 0;
      const bool all_ok = !comm.allreduce_or(!ok);
      if (comm.rank() == 0) {
        cap_valid = all_ok;
        under_cap = pstats.peak_resident_bytes <= cap_bytes;
        ooc["cap_step"] = util::Json::object();
        ooc["cap_step"]["scale"] = params.scale;
        ooc["cap_step"]["ranks"] = ranks;
        ooc["cap_step"]["cap_bytes"] = cap_bytes;
        ooc["cap_step"]["inmemory_estimate_bytes"] = estimate;
        ooc["cap_step"]["infeasible_in_memory"] = infeasible_in_memory;
        ooc["cap_step"]["peak_resident_bytes"] = pstats.peak_resident_bytes;
        ooc["cap_step"]["under_cap"] = under_cap;
        ooc["cap_step"]["sssp_seconds"] = seconds;
        ooc["cap_step"]["sssp_teps"] =
            static_cast<double>(g.num_input_edges) / seconds;
        ooc["cap_step"]["valid"] = all_ok;
        ooc["cap_step"]["residency"] = core::to_json(residency);
        ooc["cap_step"]["build_pipeline"] = ooc::to_json(pstats);
      }
      comm.barrier();
    });
  }
  fs::remove_all(dir);

  const bool pass =
      identical && cap_valid && under_cap && infeasible_in_memory;
  report.doc()["ooc"] = std::move(ooc);
  std::cout << "\nOOC gates: bit-identity "
            << (identical ? "PASS" : "FAIL")
            << ", in-memory infeasible under cap "
            << (infeasible_in_memory ? "PASS" : "FAIL")
            << ", pipeline under cap " << (under_cap ? "PASS" : "FAIL")
            << ", mapped SSSP valid " << (cap_valid ? "PASS" : "FAIL")
            << "\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int base_scale = static_cast<int>(options.get_int("base-scale", 12));
  const int roots = static_cast<int>(options.get_int("roots", 2));

  bench::RunReport report("weak_scaling", options);
  util::Table table({"ranks", "scale", "input edges", "time (s)", "TEPS",
                     "bytes/edge", "rounds", "valid"});
  for (int doubling = 0; doubling <= 5; ++doubling) {
    const int ranks = 1 << doubling;
    graph::KroneckerParams params;
    params.scale = base_scale + doubling;
    const auto m = bench::measure_sssp(params, ranks, core::SsspConfig{},
                                       roots);
    table.row()
        .add(ranks)
        .add(params.scale)
        .add(params.num_edges())
        .add(m.seconds, 4)
        .add_si(m.teps)
        .add(static_cast<double>(m.wire_bytes) /
                 static_cast<double>(params.num_edges()),
             3)
        .add(m.rounds)
        .add(m.valid ? "yes" : "NO");
    util::Json c = util::Json::object();
    c["scale"] = params.scale;
    c["ranks"] = ranks;
    c["input_edges"] = params.num_edges();
    c["bytes_per_edge"] = static_cast<double>(m.wire_bytes) /
                          static_cast<double>(params.num_edges());
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
  }
  table.print(std::cout, "F2: weak scaling (scale grows with ranks)");

  int exit_code = 0;
  if (options.get_bool("ooc", false)) {
    try {
      exit_code = run_ooc_phase(options, report, base_scale, roots);
    } catch (const std::exception& e) {
      std::cerr << "OOC phase failed: " << e.what() << "\n";
      exit_code = 1;
    }
  }
  bench::write_report(report, table);
  std::cout << "\nExpected shape: bytes/edge stays bounded (hub+coalesce "
               "filtering), rounds grow\nslowly (~ +1 bucket per scale), so "
               "modeled weak scaling is near-flat.\n";
  return exit_code;
}
