// T3 — Record-run projection: the 140-trillion-edge table.
//
// Calibrates per-edge unit costs from real measured runs on the simulated
// ranks, then drives the analytic Sunway machine model to the record
// configuration: scale 43 (2^43 vertices x 16 = ~140.7 trillion input
// edges) on 107,520 nodes (~41.9 million cores).  The substitution for the
// machine we do not have — see DESIGN.md section 2.
#include <iostream>

#include "bench_util.hpp"
#include "model/projection.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int cal_scale = static_cast<int>(options.get_int("cal-scale", 14));
  const int cal_ranks = static_cast<int>(options.get_int("cal-ranks", 8));

  // --- 1. calibrate from a real measured run -----------------------------
  graph::KroneckerParams params;
  params.scale = cal_scale;
  simmpi::World world(cal_ranks);
  core::SsspStats merged;
  std::uint64_t runs = 2;
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    comm.barrier();
    // Measure only solve traffic: reset is not available inside run, so
    // subtract construction by snapshotting.
    for (std::uint64_t i = 0; i < runs; ++i) {
      core::SsspStats local;
      (void)core::delta_stepping(comm, g, 1 + i, core::SsspConfig{}, &local);
      const auto total = core::global_stats(comm, local);
      if (comm.rank() == 0) merged.merge(total);
    }
    comm.barrier();
  });
  // Wire traffic of the whole world run (construction included) slightly
  // overstates per-SSSP bytes; dividing by runs keeps it conservative the
  // way record submissions round against themselves.
  const auto cal = model::Calibration::from_run(
      merged, world.aggregate_stats(), params.num_edges(), runs, cal_scale);

  bench::RunReport report("projection", options);
  report.doc()["calibration"] = model::to_json(cal);

  util::Table cal_table({"calibrated quantity", "value"});
  cal_table.row().add("relaxations / input edge").add(cal.relax_per_input_edge,
                                                      3);
  cal_table.row()
      .add("wire bytes / input edge")
      .add(cal.wire_bytes_per_input_edge, 3);
  cal_table.row().add("rounds / SSSP").add(cal.rounds_per_sssp, 1);
  cal_table.row().add("calibration scale").add(cal.calibration_scale);
  cal_table.print(std::cout, "T3a: calibration (measured on simulated ranks)");

  // --- 2. project the record machine -------------------------------------
  model::Projection proj(model::Machine::new_sunway(), cal);
  util::Table table({"nodes", "cores", "scale", "edges", "compute (s)",
                     "network (s)", "latency (s)", "total (s)", "GTEPS",
                     "fits"});
  struct Point {
    int scale;
    std::int64_t nodes;
  };
  const std::vector<Point> sweep = {
      {36, 840},    {37, 1680},   {38, 3360},   {39, 6720},
      {40, 13440},  {41, 26880},  {42, 53760},  {43, 107520},
  };
  for (const auto& pt : sweep) {
    const auto p = proj.predict(pt.scale, pt.nodes);
    util::Json c = util::Json::object();
    c["machine"] = "new_sunway";
    c["projection"] = model::to_json(p);
    report.add_case(std::move(c));
    table.row()
        .add(static_cast<std::uint64_t>(p.nodes))
        .add_si(static_cast<double>(p.cores), 1)
        .add(p.scale)
        .add_si(static_cast<double>(p.input_edges), 1)
        .add(p.compute_seconds, 3)
        .add(p.network_seconds, 3)
        .add(p.latency_seconds, 3)
        .add(p.total_seconds, 3)
        .add(p.gteps, 1)
        .add(p.memory_feasible ? "yes" : "NO");
  }
  table.print(std::cout,
              "T3b: projected weak scaling to the record configuration "
              "(New Sunway model)");

  // --- 3. cross-machine comparison at the record problem size ------------
  util::Table versus({"machine", "nodes", "cores", "total (s)", "GTEPS",
                      "fits"});
  struct Contender {
    model::Machine machine;
    std::int64_t nodes;
  };
  const std::vector<Contender> contenders = {
      {model::Machine::new_sunway(), 107520},
      {model::Machine::fugaku_like(), 158976},
      {model::Machine::commodity_cluster(4096), 4096},
  };
  util::Json versus_json = util::Json::array();
  for (const auto& c : contenders) {
    const model::Projection contender_proj(c.machine, cal);
    const auto p = contender_proj.predict(43, c.nodes);
    util::Json vj = util::Json::object();
    vj["machine"] = model::to_json(c.machine);
    vj["projection"] = model::to_json(p);
    versus_json.push_back(std::move(vj));
    versus.row()
        .add(c.machine.name)
        .add(static_cast<std::uint64_t>(p.nodes))
        .add_si(static_cast<double>(p.cores), 1)
        .add(p.total_seconds, 2)
        .add(p.gteps, 1)
        .add(p.memory_feasible ? "yes" : "NO");
  }
  std::cout << '\n';
  versus.print(std::cout, "T3c: scale-43 across machine classes");

  const auto record = proj.predict(43, 107520);
  std::cout << "\nHeadline projection: scale-43 Kronecker graph ("
            << util::si_format(static_cast<double>(record.input_edges), 1)
            << " edges) on " << record.nodes << " nodes ("
            << util::si_format(static_cast<double>(record.cores), 1)
            << " cores): " << record.total_seconds << " s/SSSP, "
            << record.gteps << " GTEPS.\n";
  std::cout << "Expected shape: GTEPS grows ~2x per doubling until the "
               "tapered central network\nand round latency flatten the "
               "curve; the full-machine point is communication-bound.\n";
  report.doc()["contenders"] = std::move(versus_json);
  report.doc()["headline"] = model::to_json(record);
  bench::write_report(report, table);
  return 0;
}
