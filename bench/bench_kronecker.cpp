// F7 — Generator and construction throughput (google-benchmark).
//
// Graph 500 submissions report construction time alongside SSSP; these
// microbenchmarks cover the three construction stages: counter-based edge
// materialization, the vertex scramble, and the full distributed build.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "gbench_report.hpp"
#include "graph/builder.hpp"
#include "graph/kronecker.hpp"
#include "ooc/pipeline.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

void BM_KroneckerEdge(benchmark::State& state) {
  KroneckerParams params;
  params.scale = static_cast<int>(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kronecker_edge(params, i++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KroneckerEdge)->Arg(16)->Arg(24)->Arg(32)->Arg(43);

void BM_ScrambleVertex(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scramble_vertex(v++, scale, 2, 3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScrambleVertex)->Arg(16)->Arg(43);

void BM_KroneckerSlice(benchmark::State& state) {
  KroneckerParams params;
  params.scale = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kronecker_slice(params, 0, 1 << 16));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_KroneckerSlice)->Arg(16)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_DistributedBuild(benchmark::State& state) {
  KroneckerParams params;
  params.scale = static_cast<int>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      benchmark::DoNotOptimize(build_kronecker(comm, params));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.num_edges()));
}
BENCHMARK(BM_DistributedBuild)
    ->Args({12, 1})
    ->Args({12, 4})
    ->Args({14, 4})
    ->Args({14, 8})
    ->Unit(benchmark::kMillisecond);

// The out-of-core bin/sort/pack pipeline against the in-memory build above:
// same scales, but edges stream through bounded buffers into disk shards
// instead of materializing per rank.
void BM_PipelinedBuild(benchmark::State& state) {
  KroneckerParams params;
  params.scale = static_cast<int>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  const auto dir =
      std::filesystem::temp_directory_path() / "g500_bench_ooc";
  ooc::PipelineOptions opts;
  opts.resident_budget_bytes = 8ull << 20;
  for (auto _ : state) {
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      benchmark::DoNotOptimize(
          ooc::build_sharded_kronecker(comm, params, dir.string(), opts));
    });
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.num_edges()));
}
BENCHMARK(BM_PipelinedBuild)
    ->Args({12, 1})
    ->Args({12, 4})
    ->Args({14, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return g500::bench::gbench_main("kronecker", argc, argv);
}
