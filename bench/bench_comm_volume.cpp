// T2 — Communication-volume analysis.
//
// The table behind the paper's core claim: what fraction of relaxation
// traffic each optimization removes on a power-law graph.  Reports absolute
// wire bytes/messages per SSSP and the reduction factor versus the plain
// engine, plus per-optimization filter counters.
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 15));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));

  graph::KroneckerParams params;
  params.scale = scale;

  struct Row {
    std::string name;
    core::SsspConfig config;
  };
  std::vector<Row> rows;
  rows.push_back({"plain", core::SsspConfig::plain()});
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.coalesce = true;
    rows.push_back({"coalesce", c});
  }
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.hub_cache = true;
    rows.push_back({"hub cache", c});
  }
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.local_fusion = true;
    rows.push_back({"local fusion", c});
  }
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.compress = true;
    rows.push_back({"compress", c});
  }
  rows.push_back({"all (default)", core::SsspConfig{}});

  bench::RunReport report("comm_volume", options);
  util::Table table({"configuration", "wire bytes", "bytes/edge", "messages",
                     "reduction", "coalesce-drop", "hub-drop", "fused"});
  std::uint64_t plain_bytes = 0;
  for (const auto& row : rows) {
    const auto m = bench::measure_sssp(params, ranks, row.config, 1,
                                       core::Algorithm::kDeltaStepping,
                                       /*validate=*/false);
    if (row.name == "plain") plain_bytes = m.wire_bytes;
    util::Json c = util::Json::object();
    c["configuration"] = row.name;
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["config"] = core::to_json(row.config);
    c["bytes_per_edge"] = static_cast<double>(m.wire_bytes) /
                          static_cast<double>(params.num_edges());
    c["reduction_vs_plain"] =
        plain_bytes > 0
            ? static_cast<double>(plain_bytes) /
                  static_cast<double>(std::max<std::uint64_t>(1, m.wire_bytes))
            : 0.0;
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
    table.row()
        .add(row.name)
        .add_si(static_cast<double>(m.wire_bytes))
        .add(static_cast<double>(m.wire_bytes) /
                 static_cast<double>(params.num_edges()),
             3)
        .add_si(static_cast<double>(m.wire_messages))
        .add(plain_bytes > 0
                 ? static_cast<double>(plain_bytes) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, m.wire_bytes))
                 : 0.0,
             2)
        .add_si(static_cast<double>(m.stats.filtered_coalesce))
        .add_si(static_cast<double>(m.stats.filtered_hub))
        .add_si(static_cast<double>(m.stats.fused_local));
  }
  table.print(std::cout, "T2: communication volume per SSSP, scale " +
                             std::to_string(scale) + ", " +
                             std::to_string(ranks) + " ranks");
  std::cout << "\nExpected shape: every optimization row beats 'plain'; the "
               "combined row gives the\nlargest reduction factor — this is "
               "what survives onto a 40M-core interconnect.\n";
  bench::write_report(report, table);
  return 0;
}
