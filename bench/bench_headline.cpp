// T1 — Headline Graph 500 SSSP result.
//
// Runs the official benchmark protocol (sampled roots, per-root validation,
// harmonic-mean TEPS) at a sweep of scales on the simulated ranks — the
// miniature of the paper's record submission table.
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int roots = static_cast<int>(options.get_int("roots", 8));
  const int max_scale = static_cast<int>(options.get_int("max-scale", 16));

  bench::RunReport run_report("headline", options);
  util::Table table({"scale", "vertices", "input edges", "ranks", "roots",
                     "valid", "hmean TEPS", "mean time (s)"});
  for (int scale = 12; scale <= max_scale; scale += 2) {
    graph::KroneckerParams params;
    params.scale = scale;
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const graph::DistGraph g = graph::build_kronecker(comm, params);
      core::RunnerOptions opts;
      opts.num_roots = roots;
      const auto report = core::run_benchmark(comm, g, opts);
      if (comm.rank() == 0) {
        table.row()
            .add(scale)
            .add(static_cast<std::uint64_t>(report.num_vertices))
            .add(report.num_input_edges)
            .add(ranks)
            .add(static_cast<std::uint64_t>(report.runs.size()))
            .add(report.all_valid ? "yes" : "NO")
            .add_si(report.harmonic_mean_teps)
            .add(report.mean_seconds, 4);
        util::Json c = util::Json::object();
        c["scale"] = scale;
        c["ranks"] = ranks;
        c["report"] = core::to_json(report);
        run_report.add_case(std::move(c));
      }
    });
  }
  table.print(std::cout,
              "T1: Graph500 SSSP official protocol (simulated ranks)");
  bench::write_report(run_report, table);
  return 0;
}
