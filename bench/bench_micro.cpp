// Kernel microbenchmarks (google-benchmark): the per-edge costs the
// projection model is calibrated against, measured in isolation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "gbench_report.hpp"

#include "core/bucket_queue.hpp"
#include "core/dijkstra.hpp"
#include "core/sssp_types.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = util::mix64(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Mix64);

void BM_BucketQueueChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::SplitMix64 rng(1);
  for (auto _ : state) {
    core::BucketQueue q(n);
    for (std::size_t i = 0; i < n; ++i) {
      q.update(static_cast<LocalId>(i), rng.next_below(64));
    }
    std::uint64_t b = 0;
    while ((b = q.next_nonempty(b)) != core::BucketQueue::kNone) {
      benchmark::DoNotOptimize(q.extract(b));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BucketQueueChurn)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_CoalesceSortDedup(benchmark::State& state) {
  // The per-round cost of message coalescing: sort + unique on requests.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::SplitMix64 rng(2);
  std::vector<core::RelaxRequest> base(n);
  for (auto& r : base) {
    r.target = rng.next_below(n / 4 + 1);  // ~4x duplication
    r.parent = rng.next_below(n);
    r.dist = static_cast<float>(rng.next_double());
  }
  for (auto _ : state) {
    auto box = base;
    std::sort(box.begin(), box.end(),
              [](const core::RelaxRequest& a, const core::RelaxRequest& b) {
                if (a.target != b.target) return a.target < b.target;
                return a.dist < b.dist;
              });
    box.erase(std::unique(box.begin(), box.end(),
                          [](const core::RelaxRequest& a,
                             const core::RelaxRequest& b) {
                            return a.target == b.target;
                          }),
              box.end());
    benchmark::DoNotOptimize(box);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CoalesceSortDedup)->Arg(1 << 12)->Arg(1 << 16);

void BM_CsrConstruction(benchmark::State& state) {
  const auto n = static_cast<LocalId>(state.range(0));
  util::SplitMix64 rng(3);
  std::vector<WireEdge> base(static_cast<std::size_t>(n) * 16);
  for (auto& e : base) {
    e.src = static_cast<VertexId>(rng.next_below(n));
    e.dst = rng.next_below(n);
    e.weight = static_cast<float>(rng.next_double());
  }
  for (auto _ : state) {
    auto edges = base;
    benchmark::DoNotOptimize(LocalCsr(n, std::move(edges)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_CsrConstruction)->Arg(1 << 10)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_PullIndexBuild(benchmark::State& state) {
  const auto n = static_cast<LocalId>(state.range(0));
  util::SplitMix64 rng(4);
  std::vector<WireEdge> edges(static_cast<std::size_t>(n) * 16);
  for (auto& e : edges) {
    e.src = static_cast<VertexId>(rng.next_below(n));
    e.dst = rng.next_below(n * 8);  // mostly remote neighbours
    e.weight = static_cast<float>(rng.next_double());
  }
  const LocalCsr csr(n, std::move(edges));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PullIndex::from_csr(csr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csr.num_edges()));
}
BENCHMARK(BM_PullIndexBuild)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

void BM_SequentialDijkstra(benchmark::State& state) {
  const EdgeList g =
      random_graph(static_cast<VertexId>(state.range(0)),
                   static_cast<std::uint64_t>(state.range(0)) * 8, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dijkstra(g, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_SequentialDijkstra)->Arg(1 << 12)->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return g500::bench::gbench_main("micro", argc, argv);
}
