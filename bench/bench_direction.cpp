// F8 — Direction-optimization crossover.
//
// Push sends one request per cut light edge; pull broadcasts the frontier
// once and scans incoming edges locally.  Pull wins when frontiers are
// dense relative to the rank count.  This harness sweeps the edgefactor
// (frontier density knob) and reports, for direction-opt on/off, the
// traffic and where the engine actually chose to pull.
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 12));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));

  bench::RunReport report("direction", options);
  util::Table table({"edgefactor", "mode", "pull rounds", "push rounds",
                     "wire bytes", "frontier bcast", "time (s)"});
  for (const int edgefactor : {4, 8, 16, 32, 64}) {
    graph::KroneckerParams params;
    params.scale = scale;
    params.edgefactor = edgefactor;

    for (const bool direction : {false, true}) {
      core::SsspConfig config;
      config.direction_opt = direction;
      config.pull_threshold = 0.01;
      const auto m =
          bench::measure_sssp(params, ranks, config, 1,
                              core::Algorithm::kDeltaStepping, false);
      table.row()
          .add(edgefactor)
          .add(direction ? "push+pull" : "push only")
          .add(m.stats.pull_rounds)
          .add(m.stats.push_rounds)
          .add_si(static_cast<double>(m.wire_bytes))
          .add_si(static_cast<double>(m.stats.frontier_broadcast))
          .add(m.seconds, 4);
      util::Json c = util::Json::object();
      c["scale"] = scale;
      c["ranks"] = ranks;
      c["edgefactor"] = edgefactor;
      c["mode"] = direction ? "push+pull" : "push only";
      c["measurement"] = bench::to_json(m);
      report.add_case(std::move(c));
    }
  }
  table.print(std::cout, "F8: push/pull crossover, Kronecker scale " +
                             std::to_string(scale) + ", " +
                             std::to_string(ranks) + " ranks");
  std::cout << "\nExpected shape: at low edgefactor the engine never pulls "
               "(push is cheaper);\nas density grows, pull rounds appear and "
               "the push+pull rows undercut push-only\nwire bytes.\n";
  bench::write_report(report, table);
  return 0;
}
