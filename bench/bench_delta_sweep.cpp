// F4 — Delta sensitivity.
//
// Sweeps the bucket width: small deltas mean many buckets (latency-bound,
// many rounds), large deltas mean few buckets but wasted re-relaxations
// (Bellman-Ford-like).  The auto heuristic (1/avg-degree) should sit near
// the sweet spot.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int roots = static_cast<int>(options.get_int("roots", 2));

  graph::KroneckerParams params;
  params.scale = scale;

  bench::RunReport report("delta_sweep", options);
  util::Table table({"delta", "buckets", "light rounds", "relax generated",
                     "time (s)", "valid"});
  const auto record_case = [&](const std::string& label, double delta,
                               const bench::Measurement& m) {
    util::Json c = util::Json::object();
    c["delta"] = label;
    if (delta > 0.0) c["delta_value"] = delta;
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
  };
  for (const double delta :
       {1.0 / 256, 1.0 / 64, 1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2,
        1.0}) {
    core::SsspConfig config;
    config.delta = delta;
    const auto m =
        bench::measure_sssp(params, ranks, config, roots,
                            core::Algorithm::kDeltaStepping, false);
    table.row()
        .add(delta, 5)
        .add(m.stats.buckets_processed)
        .add(m.stats.light_iterations)
        .add_si(static_cast<double>(m.stats.relax_generated))
        .add(m.seconds, 4)
        .add(m.valid ? "yes" : "NO");
    record_case(std::to_string(delta), delta, m);
  }
  // Auto delta last.
  {
    core::SsspConfig config;  // delta <= 0 selects automatically
    const auto m =
        bench::measure_sssp(params, ranks, config, roots,
                            core::Algorithm::kDeltaStepping, false);
    table.row()
        .add("auto")
        .add(m.stats.buckets_processed)
        .add(m.stats.light_iterations)
        .add_si(static_cast<double>(m.stats.relax_generated))
        .add(m.seconds, 4)
        .add(m.valid ? "yes" : "NO");
    record_case("auto", 0.0, m);
  }
  table.print(std::cout, "F4: delta sweep, Kronecker scale " +
                             std::to_string(scale));
  std::cout << "\nExpected shape: buckets fall and re-relaxation work rises "
               "as delta grows;\nthe minimum-time delta sits near "
               "1/average-degree (the 'auto' row).\n";
  bench::write_report(report, table);
  return 0;
}
