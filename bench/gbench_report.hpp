// RunReport bridge for the google-benchmark harnesses (bench_kronecker,
// bench_micro): a console reporter that also captures every run as one
// telemetry case, and a drop-in main() that writes BENCH_<name>.json with
// the same manifest/options envelope as the table harnesses
// (docs/telemetry.md).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace g500::bench {

/// Prints the normal console output and mirrors each run into JSON cases:
/// {"name", "run_type", "iterations", "real_time", "cpu_time", "time_unit",
///  <user counters, e.g. items_per_second>}.
class CapturingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      util::Json c = util::Json::object();
      c["name"] = run.benchmark_name();
      c["run_type"] =
          run.run_type == Run::RT_Aggregate ? "aggregate" : "iteration";
      c["iterations"] = static_cast<std::int64_t>(run.iterations);
      c["real_time"] = run.GetAdjustedRealTime();
      c["cpu_time"] = run.GetAdjustedCPUTime();
      c["time_unit"] = benchmark::GetTimeUnitString(run.time_unit);
      for (const auto& [name, counter] : run.counters) {
        c[name] = static_cast<double>(counter);
      }
      cases_.push_back(std::move(c));
    }
  }

  [[nodiscard]] std::vector<util::Json>& cases() noexcept { return cases_; }

 private:
  std::vector<util::Json> cases_;
};

/// main() body for a google-benchmark harness: run the registered
/// benchmarks, then write BENCH_<name>.json.  Flags the benchmark library
/// does not recognize (e.g. --report-dir) are left in argv and parsed as
/// harness options.
inline int gbench_main(const std::string& name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const util::Options options(argc, argv);
  CapturingConsoleReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  RunReport report(name, options);
  for (auto& c : reporter.cases()) report.add_case(std::move(c));
  write_report(report);
  benchmark::Shutdown();
  return 0;
}

}  // namespace g500::bench
