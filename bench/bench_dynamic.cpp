// D1 — Streaming graph mutations: delta-log commits, incremental SSSP
// repair, and version-aware serving invalidation.
//
// Two questions a mutating deployment must answer, each a hard gate:
//
//   (a) Is incremental repair exact and cheaper?  Interleaved localized
//       update batches (inserts, deletes, weight increases confined to a
//       small vertex window) through dyn::MutableGraph, each followed by
//       dyn::incremental_sssp_repair of a held SSSP result AND a
//       from-scratch recompute on the new view.  The run fails unless the
//       repaired distances are bit-identical to the recompute after EVERY
//       batch and the repair's total relaxations stay strictly below the
//       recompute's (the affected cone is small, so re-relaxing only it
//       must win).  Compaction fires mid-run to prove repair survives the
//       CSR rebuild.
//   (b) Does serving stay exact across commits?  A DistanceService with
//       the landmark oracle runs point queries interleaved with commits
//       (note_graph_update after each): every answer must match a fresh
//       recompute on the then-current view bit for bit and carry the
//       then-current graph version; the invalidation counters land in the
//       report (scoped, not wholesale: retained entries > 0 on localized
//       batches).  A restarted service then adopts the persisted oracle
//       slices AND exact point cache at the final version with zero
//       precompute waves, and keeps answering correctly.
//
// Everything lands in BENCH_dynamic.json (schema: docs/dynamic.md), gated
// in CI by scripts/check_report_schema.py (bit_identical, repair_ok,
// work_ratio < 1).
#include <algorithm>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "dyn/mutable_graph.hpp"
#include "dyn/repair.hpp"
#include "serve/driver.hpp"
#include "serve/json.hpp"
#include "util/options.hpp"
#include "util/random.hpp"

namespace {

using namespace g500;

/// Stage one localized batch on rank 0, confined to the id range
/// [lo, hi): fresh inserts inside a small window plus deletes / weight
/// doublings of in-range edges applied by earlier batches (tracked in
/// `live`, which is identical on every rank because it is folded from
/// the allgathered CommitSummary::applied lists).
void stage_localized_batch(
    dyn::MutableGraph& mg, util::SplitMix64& rng, graph::VertexId lo,
    graph::VertexId hi, graph::VertexId window, int inserts, int touches,
    const std::map<std::pair<graph::VertexId, graph::VertexId>,
                   graph::Weight>& live) {
  const graph::VertexId span = hi - lo;
  const graph::VertexId win = std::min(window, span);
  const graph::VertexId base =
      lo + (win >= span ? 0 : rng.next_below(span - win));
  for (int i = 0; i < inserts; ++i) {
    const auto u = base + rng.next_below(win);
    const auto v = base + rng.next_below(win);
    mg.stage_insert(u, v,
                    0.05f + 0.9f * static_cast<graph::Weight>(
                                       rng.next_double()));
  }
  // Revisit earlier in-range insertions: delete some, double the weight
  // of others (kSet is the only way to increase), so the
  // suspect/invalidation path of the repair is exercised, not just
  // decrease seeding.
  int candidates = 0;
  for (const auto& [key, w] : live) {
    if (key.first >= lo && key.second < hi) ++candidates;
  }
  if (candidates > 0) {
    const int stride = std::max(1, candidates / std::max(1, touches));
    int idx = 0;
    int touched = 0;
    for (const auto& [key, w] : live) {
      if (key.first < lo || key.second >= hi) continue;
      if (idx++ % stride != 0 || touched >= touches) continue;
      ++touched;
      if (rng.next_below(2) == 0) {
        mg.stage_delete(key.first, key.second);
      } else {
        mg.stage_set(key.first, key.second, w * 2.0f);
      }
    }
  }
}

/// Fold one commit into the live-edge ledger (same data on every rank).
void fold_applied(
    const dyn::CommitSummary& summary,
    std::map<std::pair<graph::VertexId, graph::VertexId>, graph::Weight>&
        live) {
  for (const auto& a : summary.applied) {
    const auto key = std::make_pair(a.u, a.v);
    if (a.removed != 0) {
      live.erase(key);
    } else {
      live[key] = a.new_weight;
    }
  }
}

/// Push one point-to-point query through the service synchronously.
serve::Answer ask(serve::DistanceService& svc, std::uint64_t& id,
                  std::uint64_t& tick, graph::VertexId root,
                  graph::VertexId target) {
  serve::Query q;
  q.id = id++;
  q.arrival_tick = tick;
  q.kind = serve::QueryKind::kPointToPoint;
  q.root = root;
  q.target = target;
  if (!svc.submit(q)) throw std::runtime_error("query shed");
  const auto answers = svc.tick(tick++, /*flush=*/true);
  if (answers.size() != 1) throw std::runtime_error("expected one answer");
  return answers.front();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 12));
  const int ranks = static_cast<int>(options.get_int("ranks", 4));
  const int num_batches = static_cast<int>(options.get_int("batches", 8));
  const int inserts = static_cast<int>(options.get_int("inserts", 12));
  const int touches = static_cast<int>(options.get_int("touches", 4));
  const graph::VertexId window =
      static_cast<graph::VertexId>(options.get_int("window", 64));
  const int landmarks = static_cast<int>(options.get_int("landmarks", 4));
  const graph::VertexId annex =
      static_cast<graph::VertexId>(options.get_int("annex", 256));
  const int serve_rounds = static_cast<int>(options.get_int("serve-rounds", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(options.get_int("seed", 0xD15C));

  graph::KroneckerParams params;
  params.scale = scale;

  bench::RunReport report("dynamic", options);
  util::Table repair_table({"batch", "applied", "suspects", "seeds",
                            "repair relax", "recompute relax", "ratio",
                            "identical", "compacted"});
  util::Table serve_table({"round", "version", "applied", "pts retained",
                           "pts dropped", "slices refreshed", "checked",
                           "exact"});

  // Rank-0 exports.  The rank lambdas run concurrently, so everything in
  // here is written ONLY under comm.rank() == 0 (the gate values are
  // allreduce-agreed, so rank 0's copy speaks for every rank).
  std::uint64_t total_applied = 0;
  std::uint64_t compactions = 0;
  std::uint64_t final_version = 0;
  std::uint64_t repair_relax = 0;
  std::uint64_t recompute_relax = 0;
  bool bit_identical = true;
  bool serving_exact = true;
  bool scoped_retained = false;
  bool restart_ok = false;
  std::uint64_t serving_checked = 0;
  serve::ServiceMetrics serve_metrics;
  std::uint64_t point_restored = 0;

  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    // Per-rank accumulators; folded into the rank-0 exports at the end.
    std::uint64_t my_repair_relax = 0;
    std::uint64_t my_recompute_relax = 0;
    std::uint64_t my_applied = 0;
    std::uint64_t my_checked = 0;
    std::uint64_t my_restored = 0;
    bool my_identical = true;
    bool my_serving_exact = true;
    bool my_scoped = false;
    bool my_restart = false;
    serve::ServiceMetrics my_metrics;

    // The universe is a Kronecker base component [0, n_base) plus a
    // disjoint annex ring [n_base, n).  Phase (b) confines its edits to
    // the annex while querying base roots, so base-rooted artifacts are
    // PROVABLY unaffected (cross-component unreachability via the
    // landmark bounds) — the scoped-retention gate has teeth instead of
    // depending on how tight the triangle brackets happen to be.
    graph::EdgeList list = graph::kronecker_graph(params);
    const graph::VertexId n_base = list.num_vertices;
    list.num_vertices = n_base + annex;
    util::SplitMix64 ring_rng(seed ^ 0xA13E);
    for (graph::VertexId i = 0; i < annex; ++i) {
      list.edges.push_back(graph::Edge{
          n_base + i, n_base + (i + 1) % annex,
          0.5f + static_cast<graph::Weight>(ring_rng.next_double())});
    }

    dyn::MutableGraph::Config mcfg;
    // At least one compaction mid-run: repair must survive the full
    // builder rebuild (hub lists, degree stats), not just view patches.
    mcfg.compact_every =
        static_cast<std::uint64_t>(std::max(2, num_batches / 2));
    dyn::MutableGraph mg(
        comm,
        graph::build_distributed(
            comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
            list.num_vertices),
        mcfg);
    const graph::VertexId n = mg.view().num_vertices;

    const auto roots = core::sample_roots(comm, mg.view(), 1, seed ^ 0x9500);
    if (roots.empty()) throw std::runtime_error("no eligible roots");
    const graph::VertexId root = roots.front();

    const core::SsspConfig scfg;  // one config for solve, repair, recompute
    core::SsspResult labels = core::delta_stepping(comm, mg.view(), root, scfg);

    // ---- (a) repair vs recompute per batch --------------------------
    // Two streams: stage_rng is consumed ONLY on rank 0 (any rank may
    // stage, and only rank 0 does), qrng is consumed identically on every
    // rank — query roots drive collective waves, so they must agree.
    util::SplitMix64 stage_rng(seed);
    util::SplitMix64 qrng(seed ^ 0x51E57);
    std::map<std::pair<graph::VertexId, graph::VertexId>, graph::Weight> live;
    for (int b = 0; b < num_batches; ++b) {
      if (comm.rank() == 0) {
        stage_localized_batch(mg, stage_rng, 0, n_base, window, inserts,
                              touches, live);
      }
      const auto summary = mg.commit_batch();
      fold_applied(summary, live);

      dyn::RepairStats rs;
      dyn::incremental_sssp_repair(comm, mg.view(), root, summary, labels,
                                   scfg, &rs);
      core::SsspStats full;
      const auto fresh =
          core::delta_stepping(comm, mg.view(), root, scfg, &full);

      // Distances only: parents may legitimately differ between the two
      // fixed-point runs (both are valid shortest-path trees).
      bool mismatch = labels.dist != fresh.dist;
      const bool identical = !comm.allreduce_or(mismatch);
      my_identical = my_identical && identical;

      const auto batch_repair = comm.allreduce_sum(rs.sssp.relax_generated);
      const auto batch_full = comm.allreduce_sum(full.relax_generated);
      my_repair_relax += batch_repair;
      my_recompute_relax += batch_full;
      my_applied += summary.edges_applied();
      if (comm.rank() == 0) {
        repair_table.row()
            .add(static_cast<std::uint64_t>(b))
            .add(summary.edges_applied())
            .add(rs.suspects)
            .add(rs.seeds)
            .add(batch_repair)
            .add(batch_full)
            .add(batch_full == 0
                     ? 0.0
                     : static_cast<double>(batch_repair) /
                           static_cast<double>(batch_full),
                 3)
            .add(identical ? "yes" : "NO")
            .add(summary.compacted ? "yes" : "-");
        util::Json c = util::Json::object();
        c["phase"] = "repair_vs_recompute";
        c["batch"] = static_cast<std::uint64_t>(b);
        c["graph_version"] = summary.graph_version;
        c["edges_applied"] = summary.edges_applied();
        c["suspects"] = rs.suspects;
        c["invalidated"] = rs.invalidated;
        c["seeds"] = rs.seeds;
        c["repair_relax"] = batch_repair;
        c["recompute_relax"] = batch_full;
        c["bit_identical"] = identical;
        c["compacted"] = summary.compacted;
        report.add_case(std::move(c));
      }
    }
    const std::uint64_t my_compactions = mg.stats().compactions;

    // ---- (b) version-aware serving across commits -------------------
    serve::OracleSliceStore store;
    serve::ServeConfig sc;
    sc.batch_size = 4;
    sc.queue_depth = 256;
    sc.oracle.num_landmarks = static_cast<std::size_t>(landmarks);
    sc.graph_version = mg.version();

    // Reference distances, recomputed fresh per (root, version) pair.
    std::map<std::pair<graph::VertexId, std::uint64_t>,
             std::vector<graph::Weight>>
        reference;
    const auto ref_distance = [&](graph::VertexId r, graph::VertexId t) {
      const auto key = std::make_pair(r, mg.version());
      auto it = reference.find(key);
      if (it == reference.end()) {
        const auto mine = core::delta_stepping(comm, mg.view(), r, scfg);
        it = reference
                 .emplace(key,
                          core::gather_result(comm, mg.view(), mine).dist)
                 .first;
      }
      return it->second[t];
    };

    {
      serve::FaultContext ctx;
      ctx.oracle_store = &store;
      serve::DistanceService svc(comm, mg.view(), sc, &ctx);
      std::uint64_t id = 0;
      std::uint64_t tick = 0;
      // Two pinned pairs repeat every round (point-cache retention bait)
      // plus fresh random pairs.
      const std::pair<graph::VertexId, graph::VertexId> pinned[2] = {
          {qrng.next_below(n_base), qrng.next_below(n_base)},
          {qrng.next_below(n_base), qrng.next_below(n_base)}};
      std::uint64_t pts_seen = 0;
      std::uint64_t slices_seen = 0;
      for (int round = 0; round <= serve_rounds; ++round) {
        std::vector<std::pair<graph::VertexId, graph::VertexId>> queries(
            pinned, pinned + 2);
        queries.emplace_back(qrng.next_below(n_base), qrng.next_below(n_base));
        queries.emplace_back(qrng.next_below(n_base), qrng.next_below(n_base));
        bool round_exact = true;
        for (const auto& [r, t] : queries) {
          const auto a = ask(svc, id, tick, r, t);
          // Float == is exact: finite distances must match bit for bit
          // and +inf compares equal to +inf.
          const bool good = a.distance == ref_distance(r, t) &&
                            a.graph_version == mg.version();
          round_exact = round_exact && good;
          ++my_checked;
        }
        my_serving_exact = my_serving_exact && round_exact;

        std::uint64_t applied_now = 0;
        if (round < serve_rounds) {
          if (comm.rank() == 0) {
            // Annex-only edits: base-rooted cache entries must survive.
            stage_localized_batch(mg, stage_rng, n_base, n, window, inserts,
                                  touches, live);
          }
          const auto summary = mg.commit_batch();
          fold_applied(summary, live);
          applied_now = summary.edges_applied();
          svc.note_graph_update(summary);
        }
        if (comm.rank() == 0) {
          const auto& m = svc.metrics();
          serve_table.row()
              .add(static_cast<std::uint64_t>(round))
              .add(svc.graph_version())
              .add(applied_now)
              .add(m.points_retained - pts_seen)
              .add(m.points_invalidated)
              .add(m.slices_refreshed - slices_seen)
              .add(static_cast<std::uint64_t>(queries.size()))
              .add(round_exact ? "yes" : "NO");
          pts_seen = m.points_retained;
          slices_seen = m.slices_refreshed;
        }
      }
      svc.persist_point_cache(store);
      my_metrics = svc.metrics();
      // Localized batches + landmarks spread over the graph: at least one
      // cached artifact must survive each commit via the oracle brackets,
      // or the invalidation is effectively wholesale.
      my_scoped = my_metrics.points_retained > 0 &&
                  my_metrics.wholesale_flushes == 0;
    }

    // Restart at the final version: both persisted artifacts adopt (zero
    // precompute waves) and the service keeps answering exactly.
    {
      serve::ServeConfig sc2 = sc;
      sc2.graph_version = mg.version();
      serve::FaultContext ctx;
      ctx.oracle_store = &store;
      serve::DistanceService svc(comm, mg.view(), sc2, &ctx);
      my_restored = svc.metrics().point_restored;
      bool adopted = svc.oracle() != nullptr &&
                     svc.oracle()->restored_from_store() &&
                     svc.oracle()->precompute_waves() == 0;
      std::uint64_t id = 1000;
      std::uint64_t tick = 0;
      for (int i = 0; i < 2; ++i) {
        const auto r = qrng.next_below(n_base);
        const auto t = qrng.next_below(n_base);
        const auto a = ask(svc, id, tick, r, t);
        adopted = adopted && a.distance == ref_distance(r, t);
        ++my_checked;
      }
      my_restart = adopted;
    }

    if (comm.rank() == 0) {
      total_applied = my_applied;
      compactions = my_compactions;
      final_version = mg.version();
      repair_relax = my_repair_relax;
      recompute_relax = my_recompute_relax;
      bit_identical = my_identical;
      serving_exact = my_serving_exact;
      scoped_retained = my_scoped;
      restart_ok = my_restart;
      serving_checked = my_checked;
      serve_metrics = my_metrics;
      point_restored = my_restored;
    }
  });

  const double work_ratio =
      recompute_relax == 0 ? 1.0
                           : static_cast<double>(repair_relax) /
                                 static_cast<double>(recompute_relax);
  const bool repair_ok = bit_identical && work_ratio < 1.0 &&
                         serving_exact && scoped_retained && restart_ok;

  repair_table.print(std::cout,
                     "D1a: incremental repair vs from-scratch recompute, "
                     "scale " + std::to_string(scale) + ", " +
                     std::to_string(ranks) + " ranks");
  std::cout << "\nExpected shape: identical distances every batch with the "
               "repair re-relaxing\nonly the affected cone — its relaxation "
               "total stays well below the recompute's.\n\n";
  serve_table.print(std::cout,
                    "D1b: version-aware serving across commits (scoped "
                    "invalidation)");
  std::cout << "\nExpected shape: every answer matches a fresh recompute on "
               "the then-current\nview; localized commits retain provably "
               "unaffected entries instead of flushing.\n\n";
  std::cout << "repair vs recompute work ratio: " << work_ratio
            << " (required < 1), bit-identical: "
            << (bit_identical ? "yes" : "NO") << "\n";
  std::cout << "serving answers exact: " << (serving_exact ? "yes" : "NO")
            << " (" << serving_checked << " checked), scoped retention: "
            << (scoped_retained ? "yes" : "NO") << ", restart adoption: "
            << (restart_ok ? "yes" : "NO") << "\n";

  util::Json dyn = util::Json::object();
  dyn["batches"] = static_cast<std::uint64_t>(num_batches);
  dyn["edges_applied"] = total_applied;
  dyn["graph_version"] = final_version;
  dyn["compactions"] = compactions;
  dyn["repair_relax"] = repair_relax;
  dyn["recompute_relax"] = recompute_relax;
  dyn["work_ratio"] = work_ratio;
  dyn["bit_identical"] = bit_identical;
  dyn["repair_ok"] = repair_ok;
  util::Json inv = util::Json::object();
  inv["graph_updates"] = serve_metrics.graph_updates;
  inv["update_edges_applied"] = serve_metrics.update_edges_applied;
  inv["roots_invalidated"] = serve_metrics.roots_invalidated;
  inv["roots_retained"] = serve_metrics.roots_retained;
  inv["points_invalidated"] = serve_metrics.points_invalidated;
  inv["points_retained"] = serve_metrics.points_retained;
  inv["memo_invalidated"] = serve_metrics.memo_invalidated;
  inv["slices_refreshed"] = serve_metrics.slices_refreshed;
  inv["wholesale_flushes"] = serve_metrics.wholesale_flushes;
  inv["version_misses"] = serve_metrics.cache.version_misses;
  dyn["invalidation"] = std::move(inv);
  util::Json pp = util::Json::object();
  pp["persisted"] = serve_metrics.point_persisted;
  pp["restored"] = point_restored;
  dyn["point_persistence"] = std::move(pp);
  dyn["serving_exact"] = serving_exact;
  dyn["serving_checked"] = serving_checked;
  dyn["scoped_retained"] = scoped_retained;
  dyn["restart_ok"] = restart_ok;
  dyn["serving_metrics"] = serve::to_json(serve_metrics);
  report.doc()["dynamic"] = std::move(dyn);
  report.doc()["acceptance_ok"] = repair_ok;
  bench::write_report(report, repair_table);
  return repair_ok ? 0 : 1;
}
