// F13 (extension) — round-by-round trace replay.
//
// Records the exact collective sequence of one SSSP on the simulated ranks
// and replays it on the New Sunway cost model at several machine sizes —
// the post-mortem attribution of where time would go at scale (alltoallv
// bandwidth vs allreduce latency), round by round.
#include <iostream>

#include "core/delta_stepping.hpp"
#include "graph/builder.hpp"
#include "model/replay.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));

  graph::KroneckerParams params;
  params.scale = scale;

  simmpi::World world(ranks);
  std::vector<graph::DistGraph> graphs(static_cast<std::size_t>(ranks));
  world.run([&](simmpi::Comm& comm) {
    graphs[static_cast<std::size_t>(comm.rank())] =
        graph::build_kronecker(comm, params);
  });
  world.reset_stats();
  world.enable_trace();
  world.run([&](simmpi::Comm& comm) {
    (void)core::delta_stepping(
        comm, graphs[static_cast<std::size_t>(comm.rank())], 1);
  });
  const auto trace = world.merged_trace();
  std::cout << "Recorded " << trace.size()
            << " collective rounds for one scale-" << scale << " SSSP on "
            << ranks << " ranks.\n\n";

  const model::Machine machine = model::Machine::new_sunway();
  for (const std::int64_t nodes : {840LL, 13440LL, 107520LL}) {
    const auto report = model::replay_trace(trace, machine, nodes, 6, ranks);
    std::cout << "--- replayed on " << nodes << " New Sunway nodes ("
              << nodes * machine.cores_per_node << " cores) ---\n";
    report.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: at small node counts the alltoallv "
               "bandwidth term dominates;\nat full machine size the "
               "latency-bound allreduce rounds take over — the\nround-count "
               "wall the paper's bucket fusion attacks.\n";
  return 0;
}
