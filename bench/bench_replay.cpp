// F13 (extension) — round-by-round trace replay.
//
// Records the exact collective sequence of one SSSP on the simulated ranks
// and replays it on the New Sunway cost model at several machine sizes —
// the post-mortem attribution of where time would go at scale (alltoallv
// bandwidth vs allreduce latency), round by round.
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "core/async_delta_stepping.hpp"
#include "core/delta_stepping.hpp"
#include "graph/builder.hpp"
#include "model/replay.hpp"
#include "model/trace_export.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));

  graph::KroneckerParams params;
  params.scale = scale;

  simmpi::World world(ranks);
  std::vector<graph::DistGraph> graphs(static_cast<std::size_t>(ranks));
  world.run([&](simmpi::Comm& comm) {
    graphs[static_cast<std::size_t>(comm.rank())] =
        graph::build_kronecker(comm, params);
  });
  world.reset_stats();
  world.enable_trace();
  world.run([&](simmpi::Comm& comm) {
    (void)core::delta_stepping(
        comm, graphs[static_cast<std::size_t>(comm.rank())], 1);
  });
  const auto trace = world.merged_trace();
  std::cout << "Recorded " << trace.size()
            << " collective rounds for one scale-" << scale << " SSSP on "
            << ranks << " ranks.\n\n";

  bench::RunReport run_report("replay", options);
  run_report.doc()["recorded_rounds"] =
      static_cast<std::uint64_t>(trace.size());
  run_report.doc()["scale"] = scale;
  run_report.doc()["ranks"] = ranks;

  const model::Machine machine = model::Machine::new_sunway();
  for (const std::int64_t nodes : {840LL, 13440LL, 107520LL}) {
    const auto report = model::replay_trace(trace, machine, nodes, 6, ranks);
    std::cout << "--- replayed on " << nodes << " New Sunway nodes ("
              << nodes * machine.cores_per_node << " cores) ---\n";
    report.print(std::cout);
    std::cout << '\n';
    util::Json c = util::Json::object();
    c["nodes"] = nodes;
    c["replay"] = model::to_json(report, /*include_rounds=*/false);
    run_report.add_case(std::move(c));
  }

  // Chrome-trace export of the record-configuration replay: durations are
  // the modeled per-round costs at 13440 nodes (chrome://tracing/Perfetto).
  {
    const auto priced = model::replay_trace(trace, machine, 13440, 6, ranks);
    const util::Json doc = model::chrome_trace(trace, priced);
    std::string trace_path = run_report.path();
    trace_path.replace(trace_path.rfind(".json"), 5, "_trace.json");
    std::filesystem::create_directories(
        std::filesystem::path(trace_path).parent_path());
    std::ofstream out(trace_path);
    out << doc.dump(2) << '\n';
    std::cout << "[telemetry] wrote " << trace_path
              << " (load in chrome://tracing)\n";
    run_report.doc()["chrome_trace_file"] = trace_path;
  }

  std::cout << "Expected shape: at small node counts the alltoallv "
               "bandwidth term dominates;\nat full machine size the "
               "latency-bound allreduce rounds take over — the\nround-count "
               "wall the paper's bucket fusion attacks.\n\n";

  // --- Async replay -----------------------------------------------------
  // Record the same SSSP on the barrier-free engine: a near-empty
  // collective log plus the aggregated parcel stream, priced by
  // replay_async_trace (bandwidth + per-flush overhead, no round latency).
  {
    world.reset_stats();
    world.run([&](simmpi::Comm& comm) {
      (void)core::async_delta_stepping(
          comm, graphs[static_cast<std::size_t>(comm.rank())], 1);
    });
    const auto async_trace = world.merged_trace();
    const auto p2p = world.p2p_summary();
    std::cout << "Async engine: " << async_trace.size()
              << " collective rounds (vs " << trace.size() << " sync), "
              << p2p.flushes << " aggregated parcels, " << p2p.bytes
              << " p2p bytes.\n";
    const auto async_report =
        model::replay_async_trace(async_trace, p2p, machine, 13440, 6, ranks);
    const auto sync_report = model::replay_trace(trace, machine, 13440, 6, ranks);
    async_report.print(std::cout);
    const double speedup = async_report.total_seconds > 0.0
                               ? sync_report.total_seconds /
                                     async_report.total_seconds
                               : 0.0;
    std::cout << "modeled critical-path speedup at 13440 nodes: " << speedup
              << "x\n";

    util::Json a = util::Json::object();
    a["collective_rounds"] = static_cast<std::uint64_t>(async_trace.size());
    a["sync_rounds"] = static_cast<std::uint64_t>(trace.size());
    a["p2p"] = simmpi::to_json(p2p);
    a["replay"] = model::to_json(async_report, /*include_rounds=*/false);
    a["critical_path_speedup"] = speedup;
    run_report.doc()["async"] = std::move(a);
  }

  bench::write_report(run_report);
  return 0;
}
