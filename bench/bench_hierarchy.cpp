// F10 (extension) — topology-aware message aggregation.
//
// Message count per relaxation round is what actually limits flat
// alltoallv at extreme scale.  This harness runs the same SSSP with the
// exchange routed flat vs through two-level supernode aggregation at
// several group sizes and reports the messages/bytes/round trade.
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 16));

  graph::KroneckerParams params;
  params.scale = scale;

  bench::RunReport report("hierarchy", options);
  util::Table table({"exchange", "wire messages", "wire bytes", "msg/round",
                     "rounds", "time (s)", "valid"});
  for (const int group : {0, 2, 4, 8}) {
    core::SsspConfig config;
    config.hierarchical_group = group;
    const auto m = bench::measure_sssp(params, ranks, config, 1,
                                       core::Algorithm::kDeltaStepping,
                                       /*validate=*/false);
    table.row()
        .add(group <= 1 ? "flat" : "2-level G=" + std::to_string(group))
        .add_si(static_cast<double>(m.wire_messages))
        .add_si(static_cast<double>(m.wire_bytes))
        .add(static_cast<double>(m.wire_messages) /
                 static_cast<double>(std::max<std::uint64_t>(1, m.rounds)),
             1)
        .add(m.rounds)
        .add(m.seconds, 4)
        .add(m.valid ? "yes" : "NO");
    util::Json c = util::Json::object();
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["hierarchical_group"] = group;
    c["exchange"] = group <= 1 ? "flat" : "2-level G=" + std::to_string(group);
    c["messages_per_round"] =
        static_cast<double>(m.wire_messages) /
        static_cast<double>(std::max<std::uint64_t>(1, m.rounds));
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
  }
  table.print(std::cout, "F10: flat vs supernode-aggregated exchange, " +
                             std::to_string(ranks) + " ranks, scale " +
                             std::to_string(scale));
  std::cout << "\nExpected shape: messages per round fall as the group size "
               "grows (O(P^2) -> \nO(P*G + P^2/G^2)) while bytes rise (each "
               "payload crosses the network up to\nthree times) — the trade "
               "that makes 40M-core rounds schedulable.\n";
  bench::write_report(report, table);
  return 0;
}
