// S1 — Online distance-query serving: micro-batching, caching, SLO.
//
// Three questions a serving deployment of the SSSP engine must answer:
//
//   (a) What does micro-batching buy?  A warm-cache drain of the same
//       query set at batch sizes 1..16: batching amortizes the per-batch
//       answer-extraction exchange (and, cold, dedupes roots into shared
//       waves), so throughput must rise with the batch size — the run
//       fails unless batch 8 reaches --min-speedup x batch 1.
//   (b) What does the root-result cache buy?  The cold sweep (budget 0)
//       isolates the dedup-only effect; the open-loop run reports the
//       cache hit rate a Zipf workload sustains.
//   (c) Does the service hold its SLO under open-loop load?  Poisson
//       arrivals with Zipf popularity: p50/p90/p99 latency ticks, queue
//       depth, shed rate, throughput.
//
// Everything lands in BENCH_serving.json (schema: docs/serving.md), gated
// in CI by scripts/check_report_schema.py.
#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <string>

#include "bench_util.hpp"
#include "serve/driver.hpp"
#include "serve/json.hpp"
#include "util/options.hpp"

namespace {

using namespace g500;

struct SweepRow {
  std::size_t batch = 0;
  serve::ServingRunReport run;
};

/// One service per batch size: prime the cache with every universe root
/// (counted separately), then measure a drain of `queries` arrivals.
SweepRow measure_batch(simmpi::Comm& comm, const graph::DistGraph& g,
                       const serve::ServeConfig& base,
                       const serve::WorkloadConfig& wl, std::size_t batch,
                       bool warm) {
  serve::ServeConfig config = base;
  config.batch_size = batch;
  if (!warm) config.cache_budget_bytes = 0;
  // Drain mode: the whole query set is pending from tick 0, so the queue
  // must admit it all; latency then measures batching delay only.
  serve::WorkloadConfig wcfg = wl;
  wcfg.ticks = 1;
  wcfg.arrivals_per_tick = static_cast<double>(wl.ticks) * wl.arrivals_per_tick;
  config.queue_depth = static_cast<std::size_t>(
      wcfg.arrivals_per_tick * 4.0 + 64.0);

  const serve::Workload workload(wcfg);
  serve::DistanceService service(comm, g, config);
  if (warm) {
    // Prime the cache with one query per universe root; run_workload's
    // reset_metrics() below excludes the priming cost from the measurement.
    std::uint64_t id = 0;
    for (const auto root : wl.roots) {
      serve::Query q;
      q.id = id++;
      q.root = root;
      q.target = root;
      (void)service.submit(q);
    }
    (void)service.drain(0);
  }
  SweepRow row;
  row.batch = batch;
  row.run = serve::run_workload(comm, g, config, workload,
                                /*keep_answers=*/false, &service);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int universe = static_cast<int>(options.get_int("universe", 32));
  const std::uint64_t ticks =
      static_cast<std::uint64_t>(options.get_int("ticks", 64));
  const double lambda = options.get_double("lambda", 4.0);
  const double zipf = options.get_double("zipf", 1.2);
  const double min_speedup = options.get_double("min-speedup", 2.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(options.get_int("seed", 0x5e21));

  graph::KroneckerParams params;
  params.scale = scale;

  bench::RunReport report("serving", options);
  util::Table warm_table({"batch", "qps", "speedup", "waves", "fetch rounds",
                          "hit rate", "p50", "p99"});
  util::Table cold_table({"batch", "qps", "waves", "waves/query"});
  const std::size_t batches[] = {1, 2, 4, 8, 16};

  double qps_b1 = 0.0;
  double qps_b8 = 0.0;
  double openloop_hit_rate = 0.0;
  bool ok = true;

  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    const auto roots =
        core::sample_roots(comm, g, universe, seed ^ 0x9500);
    if (roots.empty()) throw std::runtime_error("no eligible roots");

    serve::WorkloadConfig wl;
    wl.seed = seed;
    wl.ticks = ticks;
    wl.arrivals_per_tick = lambda;
    wl.zipf_s = zipf;
    wl.roots = roots;
    wl.num_vertices = g.num_vertices;

    serve::ServeConfig base;
    base.max_wait_ticks = 4;
    // Warm sweep budget: the whole universe fits (widest slice x roots).
    base.cache_budget_bytes =
        g.part.count(0) * sizeof(graph::Weight) * (roots.size() + 1);

    // ---- (a) warm batch sweep ---------------------------------------
    for (const auto b : batches) {
      const auto row = measure_batch(comm, g, base, wl, b, /*warm=*/true);
      const auto& m = row.run.metrics;
      if (comm.rank() == 0) {
        const double qps = row.run.throughput_qps();
        if (b == 1) qps_b1 = qps;
        if (b == 8) qps_b8 = qps;
        const auto p = m.latency_ticks.slo_percentiles();
        warm_table.row()
            .add(static_cast<std::uint64_t>(b))
            .add(qps, 0)
            .add(qps_b1 > 0.0 ? qps / qps_b1 : 0.0, 2)
            .add(m.waves)
            .add(m.fetch_rounds)
            .add(m.cache.hit_rate(), 3)
            .add(p[0], 1)
            .add(p[2], 1);
        util::Json c = util::Json::object();
        c["phase"] = "warm_batch_sweep";
        c["scale"] = scale;
        c["ranks"] = ranks;
        c["batch_size"] = static_cast<std::uint64_t>(b);
        c["run"] = serve::to_json(row.run);
        report.add_case(std::move(c));
      }
    }

    // ---- (b) cold dedup sweep ---------------------------------------
    for (const auto b : batches) {
      const auto row = measure_batch(comm, g, base, wl, b, /*warm=*/false);
      const auto& m = row.run.metrics;
      if (comm.rank() == 0) {
        const double per_query =
            m.answered == 0 ? 0.0
                            : static_cast<double>(m.waves) /
                                  static_cast<double>(m.answered);
        cold_table.row()
            .add(static_cast<std::uint64_t>(b))
            .add(row.run.throughput_qps(), 0)
            .add(m.waves)
            .add(per_query, 3);
        util::Json c = util::Json::object();
        c["phase"] = "cold_batch_sweep";
        c["scale"] = scale;
        c["ranks"] = ranks;
        c["batch_size"] = static_cast<std::uint64_t>(b);
        c["run"] = serve::to_json(row.run);
        report.add_case(std::move(c));
      }
    }

    // ---- (c) open-loop SLO run --------------------------------------
    serve::ServeConfig live = base;
    live.batch_size = 8;
    live.queue_depth = 64;
    live.slo_ticks = 32;
    live.facilities.assign(roots.begin(),
                           roots.begin() + std::min<std::size_t>(
                                               4, roots.size()));
    serve::WorkloadConfig open = wl;
    open.nearest_fraction = 0.125;
    const serve::Workload live_load(open);
    const auto live_run =
        serve::run_workload(comm, g, live, live_load);
    if (comm.rank() == 0) {
      openloop_hit_rate = live_run.metrics.cache.hit_rate();
      util::Json serving = util::Json::object();
      serving["schema_version"] = serve::kServingSchemaVersion;
      serving["config"] = serve::to_json(live);
      serving["workload"] = serve::to_json(open);
      serving["run"] = serve::to_json(live_run);
      const auto p = live_run.metrics.latency_ticks.slo_percentiles();
      util::Json latency = util::Json::object();
      latency["p50"] = p[0];
      latency["p90"] = p[1];
      latency["p99"] = p[2];
      serving["latency_ticks"] = std::move(latency);
      serving["throughput_qps"] = live_run.throughput_qps();
      serving["shed"] = live_run.metrics.shed;
      serving["shed_rate"] =
          live_run.metrics.arrived == 0
              ? 0.0
              : static_cast<double>(live_run.metrics.shed) /
                    static_cast<double>(live_run.metrics.arrived);
      serving["cache"] = serve::to_json(live_run.metrics.cache);
      report.doc()["serving"] = std::move(serving);

      util::Table live_table({"quantity", "value"});
      live_table.row().add("queries arrived").add(live_run.metrics.arrived);
      live_table.row().add("answered").add(live_run.metrics.answered);
      live_table.row().add("shed").add(live_run.metrics.shed);
      live_table.row().add("waves").add(live_run.metrics.waves);
      live_table.row()
          .add("cache hit rate")
          .add(live_run.metrics.cache.hit_rate(), 3);
      live_table.row().add("p50 latency (ticks)").add(p[0], 1);
      live_table.row().add("p90 latency (ticks)").add(p[1], 1);
      live_table.row().add("p99 latency (ticks)").add(p[2], 1);
      live_table.row()
          .add("SLO violations")
          .add(live_run.metrics.slo_violations);
      live_table.row().add("throughput (q/s)").add(live_run.throughput_qps(),
                                                   0);
      live_table.print(std::cout,
                       "S1c: open-loop Poisson/Zipf serving, batch 8");
    }
  });

  warm_table.print(std::cout, "S1a: warm-cache drain throughput vs batch size"
                              ", scale " + std::to_string(scale) + ", " +
                              std::to_string(ranks) + " ranks");
  std::cout << "\nExpected shape: throughput rises with the batch size — one "
               "answer-extraction\nexchange (and one queue pass) serves the "
               "whole batch.\n\n";
  cold_table.print(std::cout, "S1b: cold (cache off) drain — root dedup only");
  std::cout << "\nExpected shape: waves/query < 1 once batches exceed 1 — "
               "Zipf-popular roots\nrepeat within a batch and share one "
               "wave.\n\n";

  const double speedup = qps_b1 > 0.0 ? qps_b8 / qps_b1 : 0.0;
  std::cout << "batch-8 vs batch-1 warm throughput: " << speedup
            << "x (required >= " << min_speedup << "x)\n";
  std::cout << "open-loop cache hit rate: " << openloop_hit_rate
            << " (required > 0)\n";
  ok = speedup >= min_speedup && openloop_hit_rate > 0.0;

  report.doc()["speedup_batch8_vs_batch1"] = speedup;
  report.doc()["min_speedup"] = min_speedup;
  report.doc()["acceptance_ok"] = ok;
  bench::write_report(report, warm_table);
  return ok ? 0 : 1;
}
