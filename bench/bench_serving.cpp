// S1 — Online distance-query serving: micro-batching, caching, SLO.
//
// Three questions a serving deployment of the SSSP engine must answer:
//
//   (a) What does micro-batching buy?  A warm-cache drain of the same
//       query set at batch sizes 1..16: batching amortizes the per-batch
//       answer-extraction exchange (and, cold, dedupes roots into shared
//       waves), so throughput must rise with the batch size — the run
//       fails unless batch 8 reaches --min-speedup x batch 1.
//   (b) What does the root-result cache buy?  The cold sweep (budget 0)
//       isolates the dedup-only effect; the open-loop run reports the
//       cache hit rate a Zipf workload sustains.
//   (c) Does the service hold its SLO under open-loop load?  Poisson
//       arrivals with Zipf popularity: p50/p90/p99 latency ticks, queue
//       depth, shed rate, throughput.
//   (d) What does the landmark (ALT) oracle buy?  The same cold point
//       queries with the oracle off (full wave per root) and on
//       (goal-directed pruned waves, exact hits and unreachability proofs
//       settled from bounds): answers must stay bit-identical while total
//       relaxations and wire bytes both drop.
//   (e) Does adaptive batching earn its keep?  The open-loop workload at
//       every fixed batch size vs the rate-tracking controller: the
//       adaptive run must match or beat the best fixed p99.
//   (f) Does serving survive faults?  The chaos sweep: the same workload
//       through the resilient driver under an injected crash/corrupt/
//       stall schedule, against a fault-free reference.  Gates:
//       availability >= --avail-floor, every exact (kServed) answer
//       bit-identical to the reference, every degraded answer bracketed
//       by its oracle lb/ub, and a restarted service adopting the
//       persisted oracle slices with ZERO precompute waves.
//   (g) Does the multi-kernel mixed workload hold up?  A YCSB-style mix
//       (--analytics-fraction of arrivals are PageRank / k-core /
//       components / reachability jobs) through the same service:
//       per-class latency percentiles and shed/degraded counts land in
//       the report, and every kernel's validation digest must match a
//       sequential reference bit for bit (kernels_validated gate).
//
// Everything lands in BENCH_serving.json (schema: docs/serving.md), gated
// in CI by scripts/check_report_schema.py.
#include <algorithm>
#include <array>
#include <functional>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>

#include "serve/kernels.hpp"

#include "bench_util.hpp"
#include "serve/driver.hpp"
#include "serve/json.hpp"
#include "util/options.hpp"

namespace {

using namespace g500;

struct SweepRow {
  std::size_t batch = 0;
  serve::ServingRunReport run;
};

/// One service per batch size: prime the cache with every universe root
/// (counted separately), then measure a drain of `queries` arrivals.
SweepRow measure_batch(simmpi::Comm& comm, const graph::DistGraph& g,
                       const serve::ServeConfig& base,
                       const serve::WorkloadConfig& wl, std::size_t batch,
                       bool warm) {
  serve::ServeConfig config = base;
  config.batch_size = batch;
  if (!warm) config.cache_budget_bytes = 0;
  // Drain mode: the whole query set is pending from tick 0, so the queue
  // must admit it all; latency then measures batching delay only.
  serve::WorkloadConfig wcfg = wl;
  wcfg.ticks = 1;
  wcfg.arrivals_per_tick = static_cast<double>(wl.ticks) * wl.arrivals_per_tick;
  config.queue_depth = static_cast<std::size_t>(
      wcfg.arrivals_per_tick * 4.0 + 64.0);

  const serve::Workload workload(wcfg);
  serve::DistanceService service(comm, g, config);
  if (warm) {
    // Prime the cache with one query per universe root; run_workload's
    // reset_metrics() below excludes the priming cost from the measurement.
    std::uint64_t id = 0;
    for (const auto root : wl.roots) {
      serve::Query q;
      q.id = id++;
      q.root = root;
      q.target = root;
      (void)service.submit(q);
    }
    (void)service.drain(0);
  }
  SweepRow row;
  row.batch = batch;
  row.run = serve::run_workload(comm, g, config, workload,
                                /*keep_answers=*/false, &service);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int universe = static_cast<int>(options.get_int("universe", 32));
  const std::uint64_t ticks =
      static_cast<std::uint64_t>(options.get_int("ticks", 64));
  const double lambda = options.get_double("lambda", 4.0);
  const double zipf = options.get_double("zipf", 1.2);
  const double min_speedup = options.get_double("min-speedup", 2.0);
  const int landmarks = static_cast<int>(options.get_int("landmarks", 8));
  const std::uint64_t oracle_queries =
      static_cast<std::uint64_t>(options.get_int("oracle-queries", 24));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(options.get_int("seed", 0x5e21));
  const double avail_floor = options.get_double("avail-floor", 0.9);
  const int chaos_crashes = static_cast<int>(options.get_int("chaos-crashes", 3));
  const int chaos_corruptions =
      static_cast<int>(options.get_int("chaos-corruptions", 1));
  const int chaos_stalls = static_cast<int>(options.get_int("chaos-stalls", 2));
  const std::uint64_t chaos_horizon =
      static_cast<std::uint64_t>(options.get_int("chaos-horizon", 800));
  const double analytics_fraction =
      options.get_double("analytics-fraction", 0.25);

  graph::KroneckerParams params;
  params.scale = scale;

  bench::RunReport report("serving", options);
  util::Table warm_table({"batch", "qps", "speedup", "waves", "fetch rounds",
                          "hit rate", "p50", "p99"});
  util::Table cold_table({"batch", "qps", "waves", "waves/query"});
  util::Table oracle_table({"oracle", "waves", "pruned waves", "direct",
                            "relax generated", "wire bytes"});
  util::Table adaptive_table({"policy", "batch", "p50", "p99", "shed",
                              "answered"});
  const std::size_t batches[] = {1, 2, 4, 8, 16};

  double qps_b1 = 0.0;
  double qps_b8 = 0.0;
  double openloop_hit_rate = 0.0;
  bool oracle_bit_identical = false;
  double relax_reduction = 0.0;
  double wire_reduction = 0.0;
  std::size_t best_fixed_batch = 0;
  double best_fixed_p99 = 0.0;
  double adaptive_p99 = 0.0;
  bool adaptive_ok = false;
  bool ok = true;

  // Exports for the chaos phase, which drives World::run itself (the
  // retry loop must live outside the simulated machine).
  std::vector<graph::VertexId> chaos_roots;
  graph::VertexId chaos_num_vertices = 0;
  std::size_t chaos_slice_entries = 0;

  // Exports for the mixed-workload phase: kernel digests observed by the
  // service, compared after the run against host-side sequential
  // references over the identical edge list.
  std::array<std::uint64_t, serve::kNumAnalyticsKernels> mixed_digest{};
  std::array<bool, serve::kNumAnalyticsKernels> mixed_seen{};
  std::array<std::uint64_t, serve::kNumAnalyticsKernels> mixed_kernel_jobs{};
  // Each reachability pair: {root, target, value, digest}.
  std::vector<std::array<std::uint64_t, 4>> mixed_reach;
  std::array<double, 3> mixed_dist_p{};
  std::array<double, 3> mixed_ana_p{};

  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    const auto roots =
        core::sample_roots(comm, g, universe, seed ^ 0x9500);
    if (roots.empty()) throw std::runtime_error("no eligible roots");
    if (comm.rank() == 0) {
      chaos_roots = roots;
      chaos_num_vertices = g.num_vertices;
      chaos_slice_entries = g.part.count(0);
    }

    serve::WorkloadConfig wl;
    wl.seed = seed;
    wl.ticks = ticks;
    wl.arrivals_per_tick = lambda;
    wl.zipf_s = zipf;
    wl.roots = roots;
    wl.num_vertices = g.num_vertices;

    serve::ServeConfig base;
    base.max_wait_ticks = 4;
    // Warm sweep budget: the whole universe fits (widest slice x roots).
    base.cache_budget_bytes =
        g.part.count(0) * sizeof(graph::Weight) * (roots.size() + 1);

    // ---- (a) warm batch sweep ---------------------------------------
    for (const auto b : batches) {
      const auto row = measure_batch(comm, g, base, wl, b, /*warm=*/true);
      const auto& m = row.run.metrics;
      if (comm.rank() == 0) {
        const double qps = row.run.throughput_qps();
        if (b == 1) qps_b1 = qps;
        if (b == 8) qps_b8 = qps;
        const auto p = m.latency_ticks.slo_percentiles();
        warm_table.row()
            .add(static_cast<std::uint64_t>(b))
            .add(qps, 0)
            .add(qps_b1 > 0.0 ? qps / qps_b1 : 0.0, 2)
            .add(m.waves)
            .add(m.fetch_rounds)
            .add(m.cache.hit_rate(), 3)
            .add(p[0], 1)
            .add(p[2], 1);
        util::Json c = util::Json::object();
        c["phase"] = "warm_batch_sweep";
        c["scale"] = scale;
        c["ranks"] = ranks;
        c["batch_size"] = static_cast<std::uint64_t>(b);
        c["run"] = serve::to_json(row.run);
        report.add_case(std::move(c));
      }
    }

    // ---- (b) cold dedup sweep ---------------------------------------
    for (const auto b : batches) {
      const auto row = measure_batch(comm, g, base, wl, b, /*warm=*/false);
      const auto& m = row.run.metrics;
      if (comm.rank() == 0) {
        const double per_query =
            m.answered == 0 ? 0.0
                            : static_cast<double>(m.waves) /
                                  static_cast<double>(m.answered);
        cold_table.row()
            .add(static_cast<std::uint64_t>(b))
            .add(row.run.throughput_qps(), 0)
            .add(m.waves)
            .add(per_query, 3);
        util::Json c = util::Json::object();
        c["phase"] = "cold_batch_sweep";
        c["scale"] = scale;
        c["ranks"] = ranks;
        c["batch_size"] = static_cast<std::uint64_t>(b);
        c["run"] = serve::to_json(row.run);
        report.add_case(std::move(c));
      }
    }

    // ---- (c) open-loop SLO run --------------------------------------
    serve::ServeConfig live = base;
    live.batch_size = 8;
    live.queue_depth = 64;
    live.slo_ticks = 32;
    live.facilities.assign(roots.begin(),
                           roots.begin() + std::min<std::size_t>(
                                               4, roots.size()));
    serve::WorkloadConfig open = wl;
    open.nearest_fraction = 0.125;
    const serve::Workload live_load(open);
    const auto live_run =
        serve::run_workload(comm, g, live, live_load);
    if (comm.rank() == 0) {
      openloop_hit_rate = live_run.metrics.cache.hit_rate();
      util::Json serving = util::Json::object();
      serving["schema_version"] = serve::kServingSchemaVersion;
      serving["config"] = serve::to_json(live);
      serving["workload"] = serve::to_json(open);
      serving["run"] = serve::to_json(live_run);
      const auto p = live_run.metrics.latency_ticks.slo_percentiles();
      util::Json latency = util::Json::object();
      latency["p50"] = p[0];
      latency["p90"] = p[1];
      latency["p99"] = p[2];
      serving["latency_ticks"] = std::move(latency);
      serving["throughput_qps"] = live_run.throughput_qps();
      serving["shed"] = live_run.metrics.shed;
      serving["shed_rate"] =
          live_run.metrics.arrived == 0
              ? 0.0
              : static_cast<double>(live_run.metrics.shed) /
                    static_cast<double>(live_run.metrics.arrived);
      serving["cache"] = serve::to_json(live_run.metrics.cache);
      report.doc()["serving"] = std::move(serving);

      util::Table live_table({"quantity", "value"});
      live_table.row().add("queries arrived").add(live_run.metrics.arrived);
      live_table.row().add("answered").add(live_run.metrics.answered);
      live_table.row().add("shed").add(live_run.metrics.shed);
      live_table.row().add("waves").add(live_run.metrics.waves);
      live_table.row()
          .add("cache hit rate")
          .add(live_run.metrics.cache.hit_rate(), 3);
      live_table.row().add("p50 latency (ticks)").add(p[0], 1);
      live_table.row().add("p90 latency (ticks)").add(p[1], 1);
      live_table.row().add("p99 latency (ticks)").add(p[2], 1);
      live_table.row()
          .add("SLO violations")
          .add(live_run.metrics.slo_violations);
      live_table.row().add("throughput (q/s)").add(live_run.throughput_qps(),
                                                   0);
      live_table.print(std::cout,
                       "S1c: open-loop Poisson/Zipf serving, batch 8");
    }

    // ---- (d) oracle on/off sweep ------------------------------------
    // Cold uniform point queries (cache off, zipf 0): with the oracle off
    // every root group costs one full wave; with it on, exact hits and
    // unreachability proofs settle from the bounds and the remaining
    // groups run goal-directed pruned waves.  Answers must not move a bit.
    serve::WorkloadConfig pq = wl;
    pq.ticks = 1;
    pq.arrivals_per_tick = static_cast<double>(oracle_queries);
    pq.zipf_s = 0.0;
    const serve::Workload point_load(pq);

    serve::ServeConfig off_cfg = base;
    off_cfg.cache_budget_bytes = 0;
    off_cfg.batch_size = 4;
    off_cfg.queue_depth =
        static_cast<std::size_t>(oracle_queries) * 4 + 64;
    serve::ServeConfig on_cfg = off_cfg;
    on_cfg.oracle.num_landmarks = static_cast<std::size_t>(landmarks);

    const auto off_run =
        serve::run_workload(comm, g, off_cfg, point_load, /*keep_answers=*/true);
    const auto on_run =
        serve::run_workload(comm, g, on_cfg, point_load, /*keep_answers=*/true);

    bool identical = off_run.answers.size() == on_run.answers.size();
    for (std::size_t i = 0; identical && i < off_run.answers.size(); ++i) {
      const auto& a = off_run.answers[i];
      const auto& b = on_run.answers[i];
      // Float == is exact here: finite distances must match bit for bit
      // and +inf compares equal to +inf.
      identical = a.id == b.id && a.distance == b.distance;
    }
    if (comm.rank() == 0) {
      oracle_bit_identical = identical;
      relax_reduction =
          off_run.relax_generated == 0
              ? 0.0
              : 1.0 - static_cast<double>(on_run.relax_generated) /
                          static_cast<double>(off_run.relax_generated);
      wire_reduction =
          off_run.wire_bytes == 0
              ? 0.0
              : 1.0 - static_cast<double>(on_run.wire_bytes) /
                          static_cast<double>(off_run.wire_bytes);
      const auto& mo = on_run.metrics;
      oracle_table.row()
          .add("off")
          .add(off_run.metrics.waves)
          .add(off_run.metrics.pruned_waves)
          .add(std::uint64_t{0})
          .add(off_run.relax_generated)
          .add(off_run.wire_bytes);
      oracle_table.row()
          .add("on")
          .add(mo.waves)
          .add(mo.pruned_waves)
          .add(mo.oracle_exact + mo.oracle_unreachable)
          .add(on_run.relax_generated)
          .add(on_run.wire_bytes);

      util::Json oj = util::Json::object();
      oj["landmarks"] = static_cast<std::uint64_t>(landmarks);
      oj["queries"] = static_cast<std::uint64_t>(off_run.answers.size());
      oj["bit_identical"] = oracle_bit_identical;
      oj["relax_reduction"] = relax_reduction;
      oj["wire_reduction"] = wire_reduction;
      oj["precompute_waves"] = mo.oracle_precompute_waves;
      oj["precompute_seconds"] = mo.oracle_precompute_seconds;
      oj["off"] = serve::to_json(off_run);
      oj["on"] = serve::to_json(on_run);
      report.doc()["serving"]["oracle"] = std::move(oj);
    }

    // ---- (e) adaptive vs fixed batch sizes --------------------------
    // Same open-loop workload as (c) at every fixed batch size, then once
    // with the rate-tracking controller: adaptive must match or beat the
    // best fixed p99 without hand-picking the batch size.
    double best_p99 = 0.0;
    std::size_t best_b = 0;
    for (const auto b : batches) {
      serve::ServeConfig fixed = live;
      fixed.batch_size = b;
      const auto run = serve::run_workload(comm, g, fixed, live_load);
      const auto p = run.metrics.latency_ticks.slo_percentiles();
      if (best_b == 0 || p[2] < best_p99) {
        best_p99 = p[2];
        best_b = b;
      }
      if (comm.rank() == 0) {
        adaptive_table.row()
            .add("fixed")
            .add(static_cast<std::uint64_t>(b))
            .add(p[0], 1)
            .add(p[2], 1)
            .add(run.metrics.shed)
            .add(run.metrics.answered);
        util::Json c = util::Json::object();
        c["phase"] = "fixed_batch_openloop";
        c["scale"] = scale;
        c["ranks"] = ranks;
        c["batch_size"] = static_cast<std::uint64_t>(b);
        c["run"] = serve::to_json(run);
        report.add_case(std::move(c));
      }
    }

    serve::ServeConfig auto_cfg = live;
    auto_cfg.adaptive.enabled = true;
    auto_cfg.adaptive.min_batch = 1;
    auto_cfg.adaptive.max_batch = 32;
    auto_cfg.adaptive.min_wait_ticks = 1;
    auto_cfg.adaptive.max_wait_ticks = 8;
    auto_cfg.adaptive.target_wait_ticks = 2.0;
    const auto auto_run = serve::run_workload(comm, g, auto_cfg, live_load);
    const auto auto_p = auto_run.metrics.latency_ticks.slo_percentiles();
    if (comm.rank() == 0) {
      best_fixed_batch = best_b;
      best_fixed_p99 = best_p99;
      adaptive_p99 = auto_p[2];
      // "Matches or beats": allow half a tick of quantile-interpolation
      // noise plus 5% for the convergence transient.
      adaptive_ok = adaptive_p99 <= best_fixed_p99 * 1.05 + 0.5;
      adaptive_table.row()
          .add("adaptive")
          .add("auto")
          .add(auto_p[0], 1)
          .add(auto_p[2], 1)
          .add(auto_run.metrics.shed)
          .add(auto_run.metrics.answered);

      util::Json aj = util::Json::object();
      aj["best_fixed_batch"] = static_cast<std::uint64_t>(best_fixed_batch);
      aj["best_fixed_p99"] = best_fixed_p99;
      aj["adaptive_p99"] = adaptive_p99;
      aj["adaptive_adjustments"] = auto_run.metrics.adaptive_adjustments;
      aj["adaptive_shed"] = auto_run.metrics.shed;
      aj["adaptive_ok"] = adaptive_ok;
      aj["run"] = serve::to_json(auto_run);
      report.doc()["serving"]["adaptive"] = std::move(aj);
    }

    // ---- (g) mixed analytics workload -------------------------------
    // Same open-loop service with the oracle on; a quarter of arrivals
    // are analytics jobs drawn uniformly over the four kernels.  The
    // PageRank knobs stay at their defaults (tolerance 0 = fixed
    // iteration count) so the host-side sequential reference reproduces
    // every digest bit for bit.
    serve::ServeConfig mixed_cfg = live;
    mixed_cfg.oracle.num_landmarks = static_cast<std::size_t>(landmarks);
    serve::WorkloadConfig mixed_wl = wl;
    mixed_wl.nearest_fraction = 0.125;
    mixed_wl.analytics_fraction = analytics_fraction;
    const serve::Workload mixed_load(mixed_wl);
    const auto mixed_run = serve::run_workload(comm, g, mixed_cfg, mixed_load,
                                               /*keep_answers=*/true);
    if (comm.rank() == 0) {
      for (const auto& a : mixed_run.answers) {
        if (a.kind != serve::QueryKind::kAnalytics) continue;
        if (a.outcome != serve::Outcome::kServed) continue;
        const auto slot = static_cast<std::size_t>(a.kernel);
        if (a.kernel == serve::AnalyticsKernel::kReachability) {
          mixed_reach.push_back({a.root, a.target,
                                 static_cast<std::uint64_t>(a.value),
                                 a.digest});
        } else {
          mixed_digest[slot] = a.digest;
          mixed_seen[slot] = true;
        }
      }
      mixed_seen[static_cast<std::size_t>(
          serve::AnalyticsKernel::kReachability)] = !mixed_reach.empty();
      mixed_kernel_jobs = mixed_run.metrics.kernel_jobs;
      const auto dp = mixed_run.metrics.latency_ticks.slo_percentiles();
      const auto ap =
          mixed_run.metrics.analytics_latency_ticks.slo_percentiles();
      mixed_dist_p = {dp[0], dp[1], dp[2]};
      mixed_ana_p = {ap[0], ap[1], ap[2]};

      util::Json mj = util::Json::object();
      mj["analytics_fraction"] = analytics_fraction;
      mj["config"] = serve::to_json(mixed_cfg);
      mj["workload"] = serve::to_json(mixed_wl);
      mj["run"] = serve::to_json(mixed_run);
      report.doc()["serving"]["mixed"] = std::move(mj);
    }
  });

  // ---- (f) chaos sweep: availability under injected faults ------------
  // Fault-free reference, then the identical workload under a seeded
  // crash/corrupt/stall schedule, then a cold restart adopting the
  // persisted oracle slices.  All three go through the resilient driver
  // so the only variable is the fault plan.
  serve::WorkloadConfig chaos_wl;
  chaos_wl.seed = seed;
  chaos_wl.ticks = ticks;
  chaos_wl.arrivals_per_tick = lambda;
  chaos_wl.zipf_s = zipf;
  chaos_wl.nearest_fraction = 0.125;
  chaos_wl.deadline_ticks = 64;
  chaos_wl.roots = chaos_roots;
  chaos_wl.num_vertices = chaos_num_vertices;
  const serve::Workload chaos_load(chaos_wl);

  serve::ServeConfig chaos_cfg;
  chaos_cfg.batch_size = 8;
  chaos_cfg.queue_depth = 64;
  chaos_cfg.max_wait_ticks = 4;
  chaos_cfg.slo_ticks = 32;
  chaos_cfg.cache_budget_bytes = chaos_slice_entries * sizeof(graph::Weight) *
                                 (chaos_roots.size() + 1);
  chaos_cfg.facilities.assign(
      chaos_roots.begin(),
      chaos_roots.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(
              4, chaos_roots.size())));
  chaos_cfg.oracle.num_landmarks = static_cast<std::size_t>(landmarks);
  chaos_cfg.fault.enabled = true;
  chaos_cfg.fault.checkpoint_interval = 2;
  chaos_cfg.fault.max_wave_attempts = 3;
  chaos_cfg.fault.degraded_answers = true;
  chaos_cfg.fault.breaker_threshold = 3;
  chaos_cfg.fault.breaker_cooldown_ticks = 8;
  // Generous budget: the deadline propagates into every wave without
  // truncating healthy ones at this scale.
  chaos_cfg.fault.deadline_buckets_per_tick = 64;
  chaos_cfg.fault.backoff.base_seconds = 0.001;
  chaos_cfg.fault.backoff.seed = seed ^ 0xb0ff;

  const auto build = [&params](simmpi::Comm& comm) {
    return graph::build_kronecker(comm, params);
  };

  world.clear_fault_plan();
  serve::ResilientServeOptions ref_opt;
  ref_opt.keep_answers = true;
  const auto ref_run =
      serve::run_workload_resilient(world, build, chaos_cfg, chaos_load,
                                    ref_opt);

  std::vector<serve::OracleSliceStore> slice_stores;
  serve::ResilientServeOptions chaos_opt;
  chaos_opt.keep_answers = true;
  chaos_opt.oracle_stores = &slice_stores;
  simmpi::FaultPlan plan = simmpi::FaultPlan::random(
      seed ^ 0xfa17, ranks, chaos_crashes, chaos_corruptions, chaos_stalls,
      chaos_horizon);
  // One scripted early crash guarantees the retry machinery is exercised
  // even if the random schedule lands beyond the run's collective count.
  plan.crash(ranks > 1 ? 1 : 0, 64);
  world.enable_checksums(true);  // corruption must be detectable
  world.set_fault_plan(plan);
  const auto chaos_run =
      serve::run_workload_resilient(world, build, chaos_cfg, chaos_load,
                                    chaos_opt);
  world.clear_fault_plan();

  serve::ResilientServeOptions restart_opt;
  restart_opt.oracle_stores = &slice_stores;
  const auto restart_run =
      serve::run_workload_resilient(world, build, chaos_cfg, chaos_load,
                                    restart_opt);
  world.enable_checksums(false);

  // Gate 1: availability floor.
  const double chaos_avail = chaos_run.availability.availability();
  const bool avail_ok = chaos_avail >= avail_floor;
  // Gate 2/3: compare by query id against the fault-free reference.
  std::vector<float> ref_dist(chaos_load.trace().size(), 0.0f);
  std::vector<std::uint8_t> ref_served(ref_dist.size(), 0);
  for (const auto& a : ref_run.answers) {
    if (a.id < ref_dist.size() && a.outcome == serve::Outcome::kServed) {
      ref_dist[a.id] = a.distance;
      ref_served[a.id] = 1;
    }
  }
  bool exact_ok = true;
  bool bracket_ok = true;
  std::uint64_t exact_compared = 0;
  std::uint64_t degraded_checked = 0;
  for (const auto& a : chaos_run.answers) {
    if (a.id >= ref_dist.size() || ref_served[a.id] == 0) continue;
    const float ref = ref_dist[a.id];
    if (a.outcome == serve::Outcome::kServed) {
      // Float == is exact here: recovery must not move a single bit
      // (+inf compares equal to +inf).
      exact_ok = exact_ok && a.distance == ref;
      ++exact_compared;
    } else if (a.outcome == serve::Outcome::kDegraded) {
      // The true distance must sit inside the reported bracket (tiny
      // relative slack for float accumulation in the bound arithmetic).
      bracket_ok = bracket_ok && a.lb <= ref * 1.00001f + 1e-6f &&
                   ref <= a.ub * 1.00001f + 1e-6f;
      ++degraded_checked;
    }
  }
  // Gate 4: the fault plan actually bit (otherwise the sweep is vacuous).
  const bool retried = chaos_run.availability.attempts >= 2;
  // Gate 5: restart adopts the persisted slices — zero precompute waves.
  const bool restart_ok =
      restart_run.metrics.oracle_precompute_waves == 0 &&
      restart_run.availability.oracle_restored;
  const bool chaos_ok =
      avail_ok && exact_ok && bracket_ok && retried && restart_ok;

  util::Table chaos_table(
      {"run", "attempts", "retries", "served", "degraded", "deadline",
       "failed", "availability"});
  const auto chaos_row = [&](const char* name,
                             const serve::ServingRunReport& r) {
    const auto& av = r.availability;
    chaos_table.row()
        .add(name)
        .add(av.attempts)
        .add(av.wave_retries)
        .add(av.served)
        .add(av.degraded)
        .add(av.deadline_exceeded)
        .add(av.failed)
        .add(av.availability(), 4);
  };
  chaos_row("reference", ref_run);
  chaos_row("chaos", chaos_run);
  chaos_row("restart", restart_run);

  util::Json cj = util::Json::object();
  cj["avail_floor"] = avail_floor;
  cj["availability"] = chaos_avail;
  cj["attempts"] = chaos_run.availability.attempts;
  cj["wave_retries"] = chaos_run.availability.wave_retries;
  cj["waves_abandoned"] = chaos_run.availability.waves_abandoned;
  cj["exact_bit_identical"] = exact_ok;
  cj["exact_compared"] = exact_compared;
  cj["degraded_bracketed"] = bracket_ok;
  cj["degraded_checked"] = degraded_checked;
  cj["faults_exercised"] = retried;
  cj["restart_precompute_waves"] = restart_run.metrics.oracle_precompute_waves;
  cj["oracle_restored"] = restart_run.availability.oracle_restored;
  cj["chaos_ok"] = chaos_ok;
  cj["reference"] = serve::to_json(ref_run);
  cj["faulted"] = serve::to_json(chaos_run);
  cj["restart"] = serve::to_json(restart_run);
  report.doc()["serving"]["chaos"] = std::move(cj);

  // ---- (g) sequential kernel references -------------------------------
  // The exact edge list the distributed build consumed (the generator is
  // counter-based), canonicalized the same way build_distributed does:
  // self-loops dropped, parallel edges deduplicated — so the per-vertex
  // neighbour sets match the distributed CSR and the digests must too.
  const graph::EdgeList whole = graph::kronecker_graph(params);
  const std::size_t ref_n = whole.num_vertices;
  std::vector<std::vector<graph::VertexId>> adj(ref_n);
  for (const auto& e : whole.edges) {
    if (e.src == e.dst) continue;
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }

  // PageRank: same contribution/summation order as core::pagerank
  // (ascending neighbour id, dangling mass leaks), same default knobs.
  std::uint64_t ref_pr_digest = 0;
  {
    const core::PageRankConfig cfg;
    const double teleport =
        (1.0 - cfg.damping) / static_cast<double>(ref_n);
    std::vector<double> pr(ref_n, 1.0 / static_cast<double>(ref_n));
    std::vector<double> contrib(ref_n, 0.0);
    std::vector<double> next(ref_n, 0.0);
    for (std::uint64_t iter = 0; iter < cfg.max_iters; ++iter) {
      for (std::size_t v = 0; v < ref_n; ++v) {
        contrib[v] = adj[v].empty()
                         ? 0.0
                         : pr[v] / static_cast<double>(adj[v].size());
      }
      for (std::size_t v = 0; v < ref_n; ++v) {
        double sum = 0.0;
        for (const auto u : adj[v]) sum += contrib[u];
        next[v] = teleport + cfg.damping * sum;
      }
      pr.swap(next);
    }
    ref_pr_digest = serve::fnv1a(pr.data(), pr.size() * sizeof(double));
  }

  // k-core: sequential cascading peel (coreness is order-independent).
  std::uint64_t ref_kcore_digest = 0;
  {
    std::vector<std::int64_t> deg(ref_n);
    for (std::size_t v = 0; v < ref_n; ++v) {
      deg[v] = static_cast<std::int64_t>(adj[v].size());
    }
    std::vector<std::uint32_t> core_of(ref_n, 0);
    std::vector<char> alive(ref_n, 1);
    std::size_t remaining = ref_n;
    while (remaining > 0) {
      std::int64_t k = std::numeric_limits<std::int64_t>::max();
      for (std::size_t v = 0; v < ref_n; ++v) {
        if (alive[v]) k = std::min(k, deg[v]);
      }
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::size_t v = 0; v < ref_n; ++v) {
          if (!alive[v] || deg[v] > k) continue;
          alive[v] = 0;
          core_of[v] = static_cast<std::uint32_t>(k);
          --remaining;
          progress = true;
          for (const auto u : adj[v]) {
            if (alive[u]) --deg[u];
          }
        }
      }
    }
    ref_kcore_digest =
        serve::fnv1a(core_of.data(), core_of.size() * sizeof(std::uint32_t));
  }

  // Components via union-find; labels are the component's minimum vertex
  // id, matching the min-label propagation fixpoint.
  std::vector<graph::VertexId> parent(ref_n);
  for (std::size_t v = 0; v < ref_n; ++v) parent[v] = v;
  const std::function<graph::VertexId(graph::VertexId)> find =
      [&](graph::VertexId v) {
        while (parent[v] != v) {
          parent[v] = parent[parent[v]];
          v = parent[v];
        }
        return v;
      };
  for (std::size_t v = 0; v < ref_n; ++v) {
    for (const auto u : adj[v]) {
      const auto rv = find(v);
      const auto ru = find(u);
      if (rv != ru) parent[std::max(rv, ru)] = std::min(rv, ru);
    }
  }
  std::uint64_t ref_comp_digest = 0;
  {
    std::vector<graph::VertexId> label(ref_n);
    // Ascending scan: the first vertex to reach a set root is the
    // component minimum, and unions above keep the smaller root.
    for (std::size_t v = 0; v < ref_n; ++v) label[v] = find(v);
    ref_comp_digest =
        serve::fnv1a(label.data(), label.size() * sizeof(graph::VertexId));
  }

  // Reachability: every pair the service answered, against union-find,
  // value AND digest (the digest canon is {root, target, reachable}).
  bool reach_ok = true;
  for (const auto& pair : mixed_reach) {
    const bool want = find(pair[0]) == find(pair[1]);
    const std::uint64_t canon[3] = {pair[0], pair[1],
                                    want ? std::uint64_t{1} : 0};
    reach_ok = reach_ok && pair[2] == (want ? 1u : 0u) &&
               pair[3] == serve::fnv1a(canon, sizeof(canon));
  }

  const auto slot_of = [](serve::AnalyticsKernel k) {
    return static_cast<std::size_t>(k);
  };
  const bool pr_ok =
      mixed_seen[slot_of(serve::AnalyticsKernel::kPageRank)] &&
      mixed_digest[slot_of(serve::AnalyticsKernel::kPageRank)] ==
          ref_pr_digest;
  const bool kcore_ok =
      mixed_seen[slot_of(serve::AnalyticsKernel::kKCore)] &&
      mixed_digest[slot_of(serve::AnalyticsKernel::kKCore)] ==
          ref_kcore_digest;
  const bool comp_ok =
      mixed_seen[slot_of(serve::AnalyticsKernel::kComponents)] &&
      mixed_digest[slot_of(serve::AnalyticsKernel::kComponents)] ==
          ref_comp_digest;
  const bool kernels_validated =
      pr_ok && kcore_ok && comp_ok &&
      mixed_seen[slot_of(serve::AnalyticsKernel::kReachability)] && reach_ok;

  util::Table mixed_table({"kernel", "jobs", "digest", "reference", "match"});
  const auto mixed_row = [&](serve::AnalyticsKernel k, std::uint64_t ref,
                             bool match) {
    const auto slot = slot_of(k);
    mixed_table.row()
        .add(std::string(serve::kernel_name(k)))
        .add(mixed_kernel_jobs[slot])
        .add(mixed_seen[slot] ? mixed_digest[slot] : 0)
        .add(ref)
        .add(match ? "yes" : "NO");
  };
  mixed_row(serve::AnalyticsKernel::kPageRank, ref_pr_digest, pr_ok);
  mixed_row(serve::AnalyticsKernel::kKCore, ref_kcore_digest, kcore_ok);
  mixed_row(serve::AnalyticsKernel::kComponents, ref_comp_digest, comp_ok);
  mixed_table.row()
      .add("reachability")
      .add(mixed_kernel_jobs[slot_of(serve::AnalyticsKernel::kReachability)])
      .add(static_cast<std::uint64_t>(mixed_reach.size()))
      .add("per-pair")
      .add(reach_ok && !mixed_reach.empty() ? "yes" : "NO");

  util::Json kernels = util::Json::object();
  const auto kernel_case = [&](serve::AnalyticsKernel k, std::uint64_t ref,
                               bool match) {
    util::Json kj = util::Json::object();
    const auto slot = slot_of(k);
    kj["jobs"] = mixed_kernel_jobs[slot];
    kj["digest"] = mixed_seen[slot] ? mixed_digest[slot] : 0;
    kj["reference_digest"] = ref;
    kj["match"] = match;
    kernels[std::string(serve::kernel_name(k))] = std::move(kj);
  };
  kernel_case(serve::AnalyticsKernel::kPageRank, ref_pr_digest, pr_ok);
  kernel_case(serve::AnalyticsKernel::kKCore, ref_kcore_digest, kcore_ok);
  kernel_case(serve::AnalyticsKernel::kComponents, ref_comp_digest, comp_ok);
  util::Json rj = util::Json::object();
  rj["pairs"] = static_cast<std::uint64_t>(mixed_reach.size());
  rj["match"] = reach_ok && !mixed_reach.empty();
  kernels["reachability"] = std::move(rj);
  report.doc()["serving"]["mixed"]["kernels"] = std::move(kernels);
  report.doc()["serving"]["mixed"]["kernels_validated"] = kernels_validated;

  warm_table.print(std::cout, "S1a: warm-cache drain throughput vs batch size"
                              ", scale " + std::to_string(scale) + ", " +
                              std::to_string(ranks) + " ranks");
  std::cout << "\nExpected shape: throughput rises with the batch size — one "
               "answer-extraction\nexchange (and one queue pass) serves the "
               "whole batch.\n\n";
  cold_table.print(std::cout, "S1b: cold (cache off) drain — root dedup only");
  std::cout << "\nExpected shape: waves/query < 1 once batches exceed 1 — "
               "Zipf-popular roots\nrepeat within a batch and share one "
               "wave.\n\n";
  oracle_table.print(std::cout, "S1d: landmark (ALT) oracle off vs on, " +
                                    std::to_string(landmarks) + " landmarks");
  std::cout << "\nExpected shape: identical answers with fewer relaxations "
               "and wire bytes —\nbounds settle exact/unreachable queries "
               "outright and prune the rest.\n\n";
  adaptive_table.print(std::cout,
                       "S1e: open-loop p99 — fixed batch sizes vs adaptive");
  std::cout << "\nExpected shape: the controller converges to the best fixed "
               "operating point\nwithout being told the arrival rate.\n\n";
  chaos_table.print(std::cout,
                    "S1f: chaos sweep — fault-free vs injected faults vs "
                    "restart from persisted slices");
  std::cout << "\nExpected shape: the chaos run keeps availability above the "
               "floor, every exact\nanswer matches the reference bit for bit, "
               "and the restart adopts the persisted\noracle slices with zero "
               "precompute waves.\n\n";
  mixed_table.print(std::cout,
                    "S1g: mixed analytics workload — kernel digests vs "
                    "sequential references");
  std::cout << "\nExpected shape: every kernel matches its sequential "
               "reference bit for bit\nwhile distance batches keep flowing "
               "(distance p50/p90/p99 " << mixed_dist_p[0] << "/"
            << mixed_dist_p[1] << "/" << mixed_dist_p[2]
            << " ticks,\nanalytics " << mixed_ana_p[0] << "/"
            << mixed_ana_p[1] << "/" << mixed_ana_p[2] << " ticks).\n\n";

  const double speedup = qps_b1 > 0.0 ? qps_b8 / qps_b1 : 0.0;
  std::cout << "batch-8 vs batch-1 warm throughput: " << speedup
            << "x (required >= " << min_speedup << "x)\n";
  std::cout << "open-loop cache hit rate: " << openloop_hit_rate
            << " (required > 0)\n";
  std::cout << "oracle answers bit-identical: "
            << (oracle_bit_identical ? "yes" : "NO") << ", relax reduction "
            << relax_reduction << ", wire reduction " << wire_reduction
            << " (required: identical and both > 0)\n";
  std::cout << "adaptive p99 " << adaptive_p99 << " vs best fixed p99 "
            << best_fixed_p99 << " (batch " << best_fixed_batch
            << ") -> " << (adaptive_ok ? "ok" : "NOT ok") << "\n";
  std::cout << "chaos availability " << chaos_avail << " (floor "
            << avail_floor << "), " << chaos_run.availability.attempts
            << " attempts, exact answers "
            << (exact_ok ? "bit-identical" : "DIVERGED") << " ("
            << exact_compared << " compared), degraded "
            << (bracket_ok ? "bracketed" : "OUT OF BRACKET") << " ("
            << degraded_checked << " checked), restart precompute waves "
            << restart_run.metrics.oracle_precompute_waves << " -> "
            << (chaos_ok ? "ok" : "NOT ok") << "\n";
  std::cout << "mixed-workload kernels "
            << (kernels_validated ? "validated" : "NOT validated")
            << " (pagerank " << (pr_ok ? "ok" : "NO") << ", kcore "
            << (kcore_ok ? "ok" : "NO") << ", components "
            << (comp_ok ? "ok" : "NO") << ", reachability "
            << (reach_ok && !mixed_reach.empty() ? "ok" : "NO") << ", "
            << mixed_reach.size() << " pairs)\n";
  const bool oracle_ok =
      oracle_bit_identical && relax_reduction > 0.0 && wire_reduction > 0.0;
  ok = speedup >= min_speedup && openloop_hit_rate > 0.0 && oracle_ok &&
       adaptive_ok && chaos_ok && kernels_validated;

  report.doc()["speedup_batch8_vs_batch1"] = speedup;
  report.doc()["min_speedup"] = min_speedup;
  report.doc()["acceptance_ok"] = ok;
  bench::write_report(report, warm_table);
  return ok ? 0 : 1;
}
