// F3 — Optimization ablation.
//
// Cumulative build-up from distributed Bellman-Ford and plain delta-
// stepping to the fully-optimized engine: coalescing -> local fusion ->
// hub caching -> direction switching.  Reports wall time, candidate
// requests routed through the exchange, wire bytes and synchronization
// rounds — the four quantities each optimization targets.
#include <iostream>

#include "bench_util.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 15));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int roots = static_cast<int>(options.get_int("roots", 2));

  graph::KroneckerParams params;
  params.scale = scale;

  struct Step {
    std::string name;
    core::Algorithm algorithm;
    core::SsspConfig config;
  };
  std::vector<Step> steps;
  steps.push_back({"bellman-ford", core::Algorithm::kBellmanFord,
                   core::SsspConfig::plain()});
  steps.push_back({"delta plain", core::Algorithm::kDeltaStepping,
                   core::SsspConfig::plain()});
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.coalesce = true;
    steps.push_back({"+coalesce", core::Algorithm::kDeltaStepping, c});
    c.local_fusion = true;
    steps.push_back({"+fusion", core::Algorithm::kDeltaStepping, c});
    c.hub_cache = true;
    steps.push_back({"+hub cache", core::Algorithm::kDeltaStepping, c});
    c.direction_opt = true;
    steps.push_back({"+direction (full)", core::Algorithm::kDeltaStepping, c});
  }

  bench::RunReport report("ablation", options);
  util::Table table({"configuration", "wall (s)", "relax sent", "wire bytes",
                     "rounds", "GTEPS@40", "speedup@40", "valid"});
  double plain_gteps = 0.0;
  for (const auto& step : steps) {
    const auto m = bench::measure_sssp(params, ranks, step.config, roots,
                                       step.algorithm, /*validate=*/false);
    // Price this configuration at record scale (scale 40, 13440 Sunway
    // nodes), where the interconnect binds: the regime the paper's
    // ablation speaks to.
    const auto at_scale = bench::project_record(m, params);
    if (step.name == "delta plain") plain_gteps = at_scale.gteps;
    table.row()
        .add(step.name)
        .add(m.seconds, 4)
        .add_si(static_cast<double>(m.stats.relax_sent))
        .add_si(static_cast<double>(m.wire_bytes))
        .add(m.rounds)
        .add(at_scale.gteps, 1)
        .add(plain_gteps > 0.0 ? at_scale.gteps / plain_gteps : 0.0, 2)
        .add(m.valid ? "yes" : "NO");
    util::Json c = util::Json::object();
    c["configuration"] = step.name;
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["config"] = core::to_json(step.config);
    c["projection_at_40"] = model::to_json(at_scale);
    c["speedup_at_40"] =
        plain_gteps > 0.0 ? at_scale.gteps / plain_gteps : 0.0;
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
  }
  table.print(std::cout, "F3: optimization ablation, Kronecker scale " +
                             std::to_string(scale) + ", " +
                             std::to_string(ranks) + " ranks");
  std::cout << "\nExpected shape: each delta-stepping row sends fewer "
               "requests/bytes than the one\nabove; priced at record scale "
               "(GTEPS@40 = projected scale-40 run on 13440 Sunway\nnodes, "
               "where the network binds) the optimizations compound into "
               "the paper's\ncumulative speedup.  speedup@40 is relative "
               "to 'delta plain'.\n";
  bench::write_report(report, table);
  return 0;
}
