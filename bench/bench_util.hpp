// Shared helpers for the experiment harnesses.
//
// Every harness reproduces one table/figure of the (reconstructed)
// evaluation; see DESIGN.md section 4 for the experiment index and
// EXPERIMENTS.md for measured results.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/bellman_ford.hpp"
#include "core/delta_stepping.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "model/machine.hpp"
#include "model/projection.hpp"
#include "net/costmodel.hpp"
#include "simmpi/comm.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace g500::bench {

/// Everything one measured SSSP configuration yields.
struct Measurement {
  double seconds = 0.0;        ///< max over ranks, one SSSP
  double teps = 0.0;           ///< input edges / seconds
  bool valid = false;
  core::SsspStats stats;       ///< aggregated over ranks (global_stats)
  std::uint64_t wire_bytes = 0;      ///< alltoallv+allgather payload (solve only)
  std::uint64_t wire_messages = 0;   ///< point-to-point messages implied
  std::uint64_t rounds = 0;          ///< collective rounds of the solve
};

/// Build a Kronecker graph on `ranks` simulated ranks and run `roots_count`
/// SSSPs with `config`, averaging the measurements.
inline Measurement measure_sssp(const graph::KroneckerParams& params,
                                int ranks, const core::SsspConfig& config,
                                int roots_count = 1,
                                core::Algorithm algorithm =
                                    core::Algorithm::kDeltaStepping,
                                bool validate = true,
                                const graph::BuildOptions& build_opts = {}) {
  simmpi::World world(ranks);
  Measurement m;
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params, build_opts);
    const auto roots = core::sample_roots(comm, g, roots_count, 0x9500);

    struct Snap {
      std::uint64_t bytes, messages, rounds;
    };
    const auto snapshot = [&comm] {
      const auto& s = comm.stats();
      // Aggregate across ranks so the delta is machine-wide traffic.
      return Snap{
          comm.allreduce_sum(s.alltoallv.bytes + s.allgather.bytes +
                             s.allreduce.bytes),
          comm.allreduce_sum(s.alltoallv.messages + s.allgather.messages),
          comm.allreduce_max(s.alltoallv.calls + s.allgather.calls +
                             s.allreduce.calls + s.broadcast.calls +
                             s.barriers)};
    };

    double seconds = 0.0;
    core::SsspStats merged;
    const auto before = snapshot();
    for (const auto root : roots) {
      core::SsspStats local;
      comm.barrier();
      util::Timer timer;
      core::SsspResult mine;
      switch (algorithm) {
        case core::Algorithm::kDeltaStepping:
          mine = core::delta_stepping(comm, g, root, config, &local);
          break;
        case core::Algorithm::kBellmanFord:
          mine = core::bellman_ford(comm, g, root, config, &local);
          break;
        case core::Algorithm::kBfs:
          throw std::invalid_argument(
              "measure_sssp covers SSSP engines; use bench_bfs for BFS");
      }
      comm.barrier();
      seconds += comm.allreduce_max(timer.seconds());
      merged.merge(local);
      if (validate) {
        const auto verdict = core::validate_sssp(comm, g, root, mine);
        if (comm.rank() == 0 && !verdict.ok) {
          std::cerr << "VALIDATION FAILED: "
                    << (verdict.errors.empty() ? "?" : verdict.errors.front())
                    << "\n";
        }
        m.valid = verdict.ok;
      } else {
        m.valid = true;
      }
    }
    // Wire counters must be snapshotted before validation piles on top; the
    // per-root loop interleaves them, so measure a dedicated stats pass
    // when validation is off, or accept solve+validate deltas otherwise.
    const auto after = snapshot();
    const auto total = core::global_stats(comm, merged);
    if (comm.rank() == 0) {
      m.seconds = seconds / static_cast<double>(roots.size());
      m.teps = static_cast<double>(g.num_input_edges) / m.seconds;
      m.stats = total;
      m.wire_bytes = after.bytes - before.bytes;
      m.wire_messages = after.messages - before.messages;
      m.rounds = after.rounds - before.rounds;
    }
    comm.barrier();
  });
  return m;
}

/// Price a measurement on a real interconnect.
///
/// The simulated ranks share one host CPU and a zero-cost "network", so
/// wall time alone misrepresents communication-heavy configurations.  This
/// helper combines the measured quantities the way the record-run
/// methodology does: parallel compute ~= wall time / ranks (the ranks are
/// timesliced on one core, so wall ~= summed CPU), plus the measured
/// traffic priced through the commodity-cluster cost model (one rank per
/// node).
inline double modeled_seconds(const Measurement& m, int ranks) {
  const model::Machine machine =
      model::Machine::commodity_cluster(std::max(1, ranks));
  const net::SunwayTopology topo = machine.topology();
  const net::CostModel cost(topo, 1);

  const double compute = m.seconds / std::max(1, ranks);
  net::AlltoallTraffic traffic;
  traffic.total_bytes = static_cast<double>(m.wire_bytes);
  traffic.max_rank_bytes =
      static_cast<double>(m.wire_bytes) / std::max(1, ranks);
  traffic.cross_cut_fraction = 0.5;
  const double bandwidth =
      cost.alltoallv_seconds(traffic, ranks) -
      cost.alltoallv_seconds(net::AlltoallTraffic{}, ranks);
  const double latency =
      static_cast<double>(m.rounds) * cost.allreduce_seconds(16.0, ranks);
  return compute + bandwidth + latency;
}

/// Project a measured configuration to a record-class machine point.
///
/// This is how the paper's ablation is read: each optimization's value is
/// what it does to traffic/rounds *at full machine scale*, where the
/// interconnect binds — not to single-host wall time.  Calibrates the
/// analytic model from this measurement and predicts (target_scale, nodes)
/// on the New Sunway description.
inline model::ProjectionPoint project_record(
    const Measurement& m, const graph::KroneckerParams& params,
    int target_scale = 40, std::int64_t nodes = 13440) {
  model::Calibration cal;
  const auto edges = static_cast<double>(params.num_edges());
  cal.relax_per_input_edge =
      std::max(0.1, static_cast<double>(m.stats.relax_generated) / edges);
  cal.wire_bytes_per_input_edge =
      static_cast<double>(m.wire_bytes) / edges;
  cal.rounds_per_sssp = static_cast<double>(m.rounds);
  cal.calibration_scale = params.scale;
  const model::Projection proj(model::Machine::new_sunway(), cal);
  return proj.predict(target_scale, nodes);
}

}  // namespace g500::bench
