// Shared helpers for the experiment harnesses.
//
// Every harness reproduces one table/figure of the (reconstructed)
// evaluation; see DESIGN.md section 4 for the experiment index and
// EXPERIMENTS.md for measured results.
//
// Besides the console table, every harness writes a machine-readable
// BENCH_<name>.json run report (see RunReport below and docs/telemetry.md
// for the schema) so runs can be diffed and regress-gated.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/async_delta_stepping.hpp"
#include "core/bellman_ford.hpp"
#include "core/delta_stepping.hpp"
#include "core/json.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "model/json.hpp"
#include "model/machine.hpp"
#include "model/projection.hpp"
#include "net/costmodel.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/json.hpp"
#include "util/buildinfo.hpp"
#include "util/json.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace g500::bench {

/// Bump on breaking changes to the RunReport or Measurement layout
/// (docs/telemetry.md records the versioning policy).
constexpr int kRunReportSchemaVersion = 1;
constexpr int kMeasurementSchemaVersion = 1;

/// Everything one measured SSSP configuration yields.
struct Measurement {
  double seconds = 0.0;        ///< max over ranks, one SSSP
  double teps = 0.0;           ///< input edges / seconds
  bool valid = false;
  core::SsspStats stats;       ///< aggregated over ranks (global_stats)
  std::uint64_t wire_bytes = 0;      ///< all payload on the wire (solve only)
  std::uint64_t wire_messages = 0;   ///< point-to-point messages implied
  std::uint64_t rounds = 0;          ///< collective rounds of the solve
  /// The sync/async wire split (wire_bytes = collective + p2p): collective
  /// payload vs aggregated parcel payload, and the parcels that carried it.
  std::uint64_t collective_bytes = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t p2p_flushes = 0;     ///< remote parcels deposited
};

/// Measurement -> telemetry object (docs/telemetry.md "measurement").
inline util::Json to_json(const Measurement& m) {
  util::Json j = util::Json::object();
  j["schema_version"] = kMeasurementSchemaVersion;
  j["seconds"] = m.seconds;
  j["teps"] = m.teps;
  j["valid"] = m.valid;
  j["wire_bytes"] = m.wire_bytes;
  j["wire_messages"] = m.wire_messages;
  j["rounds"] = m.rounds;
  j["collective_bytes"] = m.collective_bytes;
  j["p2p_bytes"] = m.p2p_bytes;
  j["p2p_flushes"] = m.p2p_flushes;
  j["sssp_stats"] = core::to_json(m.stats);
  return j;
}

/// One harness invocation's machine-readable report, written as
/// BENCH_<name>.json next to the console output (or into --report-dir /
/// $G500_REPORT_DIR).  Usage:
///
///   bench::RunReport report("headline", options);
///   ...
///   report.add_case(case_json);          // one entry per table row
///   report.doc()["extra"] = ...;         // harness-specific sections
///   bench::write_report(report, table);  // finalize + write + announce
class RunReport {
 public:
  RunReport(std::string name, const util::Options& options)
      : name_(std::move(name)), cases_(util::Json::array()) {
    doc_ = util::Json::object();
    doc_["schema_version"] = kRunReportSchemaVersion;
    doc_["harness"] = name_;
    doc_["manifest"] = util::run_manifest();
    util::Json opts = util::Json::object();
    for (const auto& [key, value] : options.named()) opts[key] = value;
    doc_["options"] = std::move(opts);
    dir_ = options.get("report-dir", "");
    if (dir_.empty()) {
      const char* env = std::getenv("G500_REPORT_DIR");
      dir_ = (env != nullptr && *env != '\0') ? env : ".";
    }
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Root object (schema_version/harness/manifest/options pre-filled).
  [[nodiscard]] util::Json& doc() noexcept { return doc_; }

  /// Append one measured case (typically one console-table row).
  void add_case(util::Json case_object) {
    cases_.push_back(std::move(case_object));
  }

  /// Path this report will be written to.
  [[nodiscard]] std::string path() const {
    return dir_ + "/BENCH_" + name_ + ".json";
  }

  /// Finalize (attach cases and, when given, the console-table echo) and
  /// write BENCH_<name>.json.  Returns the path written.
  std::string write(const util::Table* table = nullptr) {
    doc_["cases"] = std::move(cases_);
    cases_ = util::Json::array();
    if (table != nullptr) doc_["table"] = util::to_json(*table);
    std::filesystem::create_directories(dir_);
    const std::string file = path();
    std::ofstream out(file);
    if (!out) {
      throw std::runtime_error("RunReport: cannot write " + file);
    }
    out << doc_.dump(2) << '\n';
    return file;
  }

 private:
  std::string name_;
  std::string dir_;
  util::Json doc_;
  util::Json cases_;
};

/// The shared harness epilogue: write the report (with the printed table
/// echoed into it) and announce the file on the console.
inline void write_report(RunReport& report, const util::Table* table = nullptr,
                         std::ostream& out = std::cout) {
  const std::string file = report.write(table);
  out << "[telemetry] wrote " << file << "\n";
}

inline void write_report(RunReport& report, const util::Table& table,
                         std::ostream& out = std::cout) {
  write_report(report, &table, out);
}

/// Build a Kronecker graph on `ranks` simulated ranks and run `roots_count`
/// SSSPs with `config`, averaging the measurements.
inline Measurement measure_sssp(const graph::KroneckerParams& params,
                                int ranks, const core::SsspConfig& config,
                                int roots_count = 1,
                                core::Algorithm algorithm =
                                    core::Algorithm::kDeltaStepping,
                                bool validate = true,
                                const graph::BuildOptions& build_opts = {}) {
  simmpi::World world(ranks);
  Measurement m;
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params, build_opts);
    const auto roots = core::sample_roots(comm, g, roots_count, 0x9500);

    struct Snap {
      std::uint64_t bytes, messages, rounds, p2p_bytes, p2p_flushes;
    };
    const auto snapshot = [&comm] {
      const auto& s = comm.stats();
      // Aggregate across ranks so the delta is machine-wide traffic.
      return Snap{
          comm.allreduce_sum(s.alltoallv.bytes + s.allgather.bytes +
                             s.allreduce.bytes),
          comm.allreduce_sum(s.alltoallv.messages + s.allgather.messages +
                             s.p2p.messages),
          comm.allreduce_max(s.alltoallv.calls + s.allgather.calls +
                             s.allreduce.calls + s.broadcast.calls +
                             s.barriers),
          comm.allreduce_sum(s.p2p.bytes), comm.allreduce_sum(s.p2p.calls)};
    };
    // A snapshot itself runs five allreduces; measure that once so each
    // bracketed delta below can subtract its own bracket's cost.
    const auto probe0 = snapshot();
    const auto probe1 = snapshot();
    const Snap snap_cost{probe1.bytes - probe0.bytes,
                         probe1.messages - probe0.messages,
                         probe1.rounds - probe0.rounds,
                         probe1.p2p_bytes - probe0.p2p_bytes,
                         probe1.p2p_flushes - probe0.p2p_flushes};

    double seconds = 0.0;
    core::SsspStats merged;
    Snap wire{0, 0, 0, 0, 0};
    for (const auto root : roots) {
      core::SsspStats local;
      comm.barrier();
      const auto before = snapshot();
      util::Timer timer;
      core::SsspResult mine;
      switch (algorithm) {
        case core::Algorithm::kDeltaStepping:
          mine = core::delta_stepping(comm, g, root, config, &local);
          break;
        case core::Algorithm::kAsyncDeltaStepping:
          mine = core::async_delta_stepping(comm, g, root, config, &local);
          break;
        case core::Algorithm::kBellmanFord:
          mine = core::bellman_ford(comm, g, root, config, &local);
          break;
        case core::Algorithm::kBfs:
          throw std::invalid_argument(
              "measure_sssp covers SSSP engines; use bench_bfs for BFS");
      }
      comm.barrier();
      seconds += comm.allreduce_max(timer.seconds());
      merged.merge(local);
      // Snapshot wire counters per root, before validation runs, so the
      // reported deltas are solve traffic only (validation traffic used to
      // leak into the totals).
      const auto after = snapshot();
      wire.bytes += after.bytes - before.bytes - snap_cost.bytes;
      wire.messages += after.messages - before.messages - snap_cost.messages;
      wire.rounds += after.rounds - before.rounds - snap_cost.rounds;
      wire.p2p_bytes += after.p2p_bytes - before.p2p_bytes -
                        snap_cost.p2p_bytes;
      wire.p2p_flushes += after.p2p_flushes - before.p2p_flushes -
                          snap_cost.p2p_flushes;
      if (validate) {
        const auto verdict = core::validate_sssp(comm, g, root, mine);
        if (comm.rank() == 0 && !verdict.ok) {
          std::cerr << "VALIDATION FAILED: "
                    << (verdict.errors.empty() ? "?" : verdict.errors.front())
                    << "\n";
        }
        m.valid = verdict.ok;
      } else {
        m.valid = true;
      }
    }
    const auto total = core::global_stats(comm, merged);
    if (comm.rank() == 0) {
      m.seconds = seconds / static_cast<double>(roots.size());
      m.teps = static_cast<double>(g.num_input_edges) / m.seconds;
      m.stats = total;
      m.collective_bytes = wire.bytes;
      m.p2p_bytes = wire.p2p_bytes;
      m.p2p_flushes = wire.p2p_flushes;
      m.wire_bytes = wire.bytes + wire.p2p_bytes;
      m.wire_messages = wire.messages;
      m.rounds = wire.rounds;
    }
    comm.barrier();
  });
  return m;
}

/// Price a measurement on a real interconnect.
///
/// The simulated ranks share one host CPU and a zero-cost "network", so
/// wall time alone misrepresents communication-heavy configurations.  This
/// helper combines the measured quantities the way the record-run
/// methodology does: parallel compute ~= wall time / ranks (the ranks are
/// timesliced on one core, so wall ~= summed CPU), plus the measured
/// traffic priced through the commodity-cluster cost model (one rank per
/// node).
inline double modeled_seconds(const Measurement& m, int ranks) {
  const model::Machine machine =
      model::Machine::commodity_cluster(std::max(1, ranks));
  const net::SunwayTopology topo = machine.topology();
  const net::CostModel cost(topo, 1);

  const double compute = m.seconds / std::max(1, ranks);
  net::AlltoallTraffic traffic;
  traffic.total_bytes = static_cast<double>(m.wire_bytes);
  traffic.max_rank_bytes =
      static_cast<double>(m.wire_bytes) / std::max(1, ranks);
  traffic.cross_cut_fraction = 0.5;
  const double bandwidth =
      cost.alltoallv_seconds(traffic, ranks) -
      cost.alltoallv_seconds(net::AlltoallTraffic{}, ranks);
  const double latency =
      static_cast<double>(m.rounds) * cost.allreduce_seconds(16.0, ranks);
  return compute + bandwidth + latency;
}

/// Project a measured configuration to a record-class machine point.
///
/// This is how the paper's ablation is read: each optimization's value is
/// what it does to traffic/rounds *at full machine scale*, where the
/// interconnect binds — not to single-host wall time.  Calibrates the
/// analytic model from this measurement and predicts (target_scale, nodes)
/// on the New Sunway description.
inline model::ProjectionPoint project_record(
    const Measurement& m, const graph::KroneckerParams& params,
    int target_scale = 40, std::int64_t nodes = 13440) {
  model::Calibration cal;
  const auto edges = static_cast<double>(params.num_edges());
  cal.relax_per_input_edge =
      std::max(0.1, static_cast<double>(m.stats.relax_generated) / edges);
  cal.wire_bytes_per_input_edge =
      static_cast<double>(m.wire_bytes) / edges;
  cal.rounds_per_sssp = static_cast<double>(m.rounds);
  cal.calibration_scale = params.scale;
  const model::Projection proj(model::Machine::new_sunway(), cal);
  return proj.predict(target_scale, nodes);
}

}  // namespace g500::bench
