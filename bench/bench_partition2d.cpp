// F12 (extension) — 1-D vs 2-D partitioning.
//
// The checkerboard bounds each rank's communication partners to its grid
// row + column (~2 sqrt(P)) but replicates every frontier entry down a
// column.  This harness solves the same graph with both layouts and
// reports partners, messages, bytes and rounds — the trade the paper's
// 1-D + hub-filtering design is implicitly weighed against.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/delta_stepping.hpp"
#include "core/delta_stepping_2d.hpp"
#include "graph/builder.hpp"
#include "graph/grid2d.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace g500;

struct Row {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t rounds = 0;
  int max_partners = 0;
  double seconds = 0.0;
};

Row measure(bool two_d, const graph::KroneckerParams& params, int ranks) {
  simmpi::World world(ranks);
  std::vector<graph::DistGraph> one_d(two_d ? 0 : ranks);
  std::vector<graph::Dist2DGraph> checker(two_d ? ranks : 0);
  world.run([&](simmpi::Comm& comm) {
    if (two_d) {
      const auto total = params.num_edges();
      const auto P = static_cast<std::uint64_t>(comm.size());
      const auto r = static_cast<std::uint64_t>(comm.rank());
      graph::EdgeList slice;
      slice.num_vertices = params.num_vertices();
      slice.edges =
          graph::kronecker_slice(params, total * r / P, total * (r + 1) / P);
      checker[comm.rank()] = graph::build_2d(comm, slice,
                                             params.num_vertices());
    } else {
      one_d[comm.rank()] = graph::build_kronecker(comm, params);
    }
  });
  world.reset_stats();

  Row row;
  util::Timer timer;
  world.run([&](simmpi::Comm& comm) {
    if (two_d) {
      (void)core::delta_stepping_2d(comm, checker[comm.rank()], 1);
    } else {
      (void)core::delta_stepping(comm, one_d[comm.rank()], 1);
    }
  });
  row.seconds = timer.seconds();

  const auto stats = world.aggregate_stats();
  row.messages = stats.alltoallv.messages + stats.allgather.messages;
  row.bytes = stats.total_bytes();
  row.rounds = stats.rounds() / static_cast<std::uint64_t>(ranks);
  for (int r = 0; r < ranks; ++r) {
    const auto& bytes_to = world.rank_stats(r).bytes_to;
    int partners = 0;
    for (int d = 0; d < ranks; ++d) {
      if (d != r && bytes_to[d] > 0) ++partners;
    }
    row.max_partners = std::max(row.max_partners, partners);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 13));
  const int ranks = static_cast<int>(options.get_int("ranks", 16));

  graph::KroneckerParams params;
  params.scale = scale;
  const graph::ProcessGrid grid(ranks);

  bench::RunReport report("partition2d", options);
  util::Table table({"layout", "max partners", "messages", "bytes", "rounds",
                     "wall (s)"});
  for (const bool two_d : {false, true}) {
    const Row row = measure(two_d, params, ranks);
    const std::string layout = two_d ? "2-D " + std::to_string(grid.rows()) +
                                           "x" + std::to_string(grid.cols())
                                     : "1-D (paper)";
    table.row()
        .add(layout)
        .add(row.max_partners)
        .add_si(static_cast<double>(row.messages))
        .add_si(static_cast<double>(row.bytes))
        .add(row.rounds)
        .add(row.seconds, 4);
    util::Json c = util::Json::object();
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["layout"] = layout;
    c["max_partners"] = row.max_partners;
    c["messages"] = row.messages;
    c["bytes"] = row.bytes;
    c["rounds"] = row.rounds;
    c["seconds"] = row.seconds;
    report.add_case(std::move(c));
  }
  table.print(std::cout, "F12: 1-D vs 2-D partitioning, scale " +
                             std::to_string(scale) + ", " +
                             std::to_string(ranks) + " ranks");
  std::cout << "\nExpected shape: the 2-D layout caps partners at "
               "rows+cols = "
            << grid.rows() + grid.cols() << " (vs up to " << ranks - 1
            << " for 1-D)\nwhile paying frontier replication in bytes; the "
               "paper's 1-D design instead tames\npartner count with "
               "hub-filtering + hierarchical aggregation.\n";
  bench::write_report(report, table);
  return 0;
}
