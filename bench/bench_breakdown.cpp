// F5 — Execution breakdown.
//
// Where one SSSP spends its effort: light vs heavy phases, rounds per
// bucket, and the distribution of frontier sizes per inner round (the
// histogram that motivates direction switching).  Also runs the async-vs-
// sync comparison and GATES it: the barrier-free engine must reproduce the
// synchronous distances bit-for-bit while issuing strictly fewer global
// collectives, or this harness exits nonzero.
#include <cstring>
#include <iostream>

#include "bench_util.hpp"
#include "core/async_delta_stepping.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int scale = static_cast<int>(options.get_int("scale", 15));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));

  graph::KroneckerParams params;
  params.scale = scale;

  core::SsspConfig config;
  config.collect_bucket_trace = true;
  const auto m = bench::measure_sssp(params, ranks, config, 2);

  bench::RunReport report("breakdown", options);
  {
    util::Json c = util::Json::object();
    c["scale"] = scale;
    c["ranks"] = ranks;
    c["config"] = core::to_json(config);
    c["measurement"] = bench::to_json(m);
    report.add_case(std::move(c));
  }

  util::Table table({"metric", "value"});
  table.row().add("buckets processed").add(m.stats.buckets_processed);
  table.row().add("light inner rounds").add(m.stats.light_iterations);
  table.row()
      .add("rounds per bucket")
      .add(static_cast<double>(m.stats.light_iterations) /
               static_cast<double>(std::max<std::uint64_t>(
                   1, m.stats.buckets_processed)),
           2);
  table.row().add("heavy phases").add(m.stats.heavy_phases);
  table.row().add("push rounds").add(m.stats.push_rounds);
  table.row().add("pull rounds").add(m.stats.pull_rounds);
  table.row().add("light time (s)").add(m.stats.light_seconds, 4);
  table.row().add("heavy time (s)").add(m.stats.heavy_seconds, 4);
  table.row()
      .add("relax generated")
      .add_si(static_cast<double>(m.stats.relax_generated));
  table.row()
      .add("relax applied")
      .add_si(static_cast<double>(m.stats.relax_applied));
  table.row()
      .add("apply rate")
      .add(static_cast<double>(m.stats.relax_applied) /
               static_cast<double>(
                   std::max<std::uint64_t>(1, m.stats.relax_generated)),
           3);
  table.row().add("valid").add(m.valid ? "yes" : "NO");
  table.print(std::cout, "F5: phase breakdown, Kronecker scale " +
                             std::to_string(scale));

  std::cout << "\nFrontier size per inner round (log2 buckets):\n"
            << m.stats.frontier_hist.to_string() << "\n";
  {
    const auto p = m.stats.frontier_hist.slo_percentiles();
    std::cout << "frontier-size percentiles (interpolated): p50 " << p[0]
              << "  p90 " << p[1] << "  p99 " << p[2] << "\n\n";
    util::Json fq = util::Json::object();
    fq["p50"] = p[0];
    fq["p90"] = p[1];
    fq["p99"] = p[2];
    report.doc()["frontier_percentiles"] = std::move(fq);
  }

  // Per-bucket time series of the first solve (rank 0's view).
  {
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const graph::DistGraph g = graph::build_kronecker(comm, params);
      core::SsspStats stats;
      (void)core::delta_stepping(comm, g, 1, config, &stats);
      if (comm.rank() == 0) {
        const util::Json sj = core::to_json(stats);
        if (sj.contains("bucket_trace")) {
          report.doc()["bucket_trace_rank0"] = sj.at("bucket_trace");
        }
        util::Table series({"bucket", "light rounds", "frontier mass",
                            "settled (rank 0)", "time (ms)"});
        // Cap the print at the 24 busiest-to-latest rows for readability.
        const std::size_t n = stats.bucket_trace.size();
        const std::size_t step = n > 24 ? n / 24 + 1 : 1;
        for (std::size_t i = 0; i < n; i += step) {
          const auto& row = stats.bucket_trace[i];
          series.row()
              .add(row.bucket)
              .add(row.light_rounds)
              .add(row.frontier_total)
              .add(row.settled)
              .add(row.seconds * 1e3, 3);
        }
        series.print(std::cout, "per-bucket time series (sampled rows, " +
                                    std::to_string(n) + " buckets total)");
      }
    });
  }
  std::cout << "Expected shape: a few giant-frontier rounds hold most "
               "vertices (pull territory),\na long tail of tiny rounds "
               "(latency territory); light phase dominates heavy.\n\n";

  // --- Async vs sync (gated) -------------------------------------------
  // Same graph, same roots: run both engines back to back on every rank,
  // compare the owned distance slices byte-for-byte, and compare collective
  // round counts.  The acceptance bar: bit-identical distances, strictly
  // fewer global collectives.
  bool bit_identical = false;
  std::uint64_t p2p_bytes = 0;
  core::SsspStats sync_stats;
  core::SsspStats async_stats;
  {
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const graph::DistGraph g = graph::build_kronecker(comm, params);
      const auto roots = core::sample_roots(comm, g, 3, 0x9500);
      bool mismatch = false;
      core::SsspStats merged_sync;
      core::SsspStats merged_async;
      for (const auto root : roots) {
        core::SsspStats s;
        core::SsspStats a;
        const auto sync_result =
            core::delta_stepping(comm, g, root, {}, &s);
        const auto async_result =
            core::async_delta_stepping(comm, g, root, {}, &a);
        mismatch = mismatch ||
                   sync_result.dist.size() != async_result.dist.size() ||
                   std::memcmp(sync_result.dist.data(),
                               async_result.dist.data(),
                               sync_result.dist.size() *
                                   sizeof(graph::Weight)) != 0;
        merged_sync.merge(s);
        merged_async.merge(a);
      }
      mismatch = comm.allreduce_or(mismatch);
      const auto gs = core::global_stats(comm, merged_sync);
      const auto ga = core::global_stats(comm, merged_async);
      if (comm.rank() == 0) {
        bit_identical = !mismatch;
        sync_stats = gs;
        async_stats = ga;
      }
    });
    p2p_bytes = world.p2p_summary().bytes;
  }
  const bool fewer_collectives =
      async_stats.global_collectives < sync_stats.global_collectives;

  util::Table async_table({"metric", "sync", "async"});
  async_table.row()
      .add("global collectives")
      .add(sync_stats.global_collectives)
      .add(async_stats.global_collectives);
  async_table.row()
      .add("sub-rounds (mean/rank)")
      .add(sync_stats.sub_rounds)
      .add(async_stats.sub_rounds);
  async_table.row()
      .add("relax applied")
      .add_si(static_cast<double>(sync_stats.relax_applied))
      .add_si(static_cast<double>(async_stats.relax_applied));
  async_table.row()
      .add("aggregator flushes (cap/timeout)")
      .add("-")
      .add(std::to_string(async_stats.aggregator_flush_capacity) + "/" +
           std::to_string(async_stats.aggregator_flush_timeout));
  async_table.row()
      .add("bit-identical distances")
      .add("-")
      .add(bit_identical ? "yes" : "NO");
  async_table.print(std::cout, "async vs sync (3 roots)");

  {
    util::Json a = util::Json::object();
    a["sync_collectives"] = sync_stats.global_collectives;
    a["async_collectives"] = async_stats.global_collectives;
    a["fewer_collectives"] = fewer_collectives;
    a["bit_identical"] = bit_identical;
    a["flush_capacity"] = async_stats.aggregator_flush_capacity;
    a["flush_timeout"] = async_stats.aggregator_flush_timeout;
    a["p2p_bytes"] = p2p_bytes;
    report.doc()["async"] = std::move(a);
  }

  bench::write_report(report, table);
  if (!bit_identical || !fewer_collectives) {
    std::cerr << "ASYNC GATE FAILED: bit_identical="
              << (bit_identical ? "yes" : "no") << " fewer_collectives="
              << (fewer_collectives ? "yes" : "no") << "\n";
    return 1;
  }
  return 0;
}
