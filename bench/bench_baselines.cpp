// F6 — Baseline comparison.
//
// Delta-stepping vs distributed Bellman-Ford vs sequential Dijkstra, on a
// power-law Kronecker graph and a large-diameter grid (road-network
// stand-in).  The figure the paper's related-work discussion implies:
// buckets win on both, and by more where re-relaxation hurts.
#include <iostream>

#include "bench_util.hpp"
#include "core/dijkstra.hpp"
#include "core/seq_delta_stepping.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"

namespace {

using namespace g500;

struct GraphUnderTest {
  std::string name;
  graph::EdgeList list;
};

void add_case(bench::RunReport& report, const std::string& graph_name,
              const std::string& algorithm, double seconds,
              double dijkstra_seconds, std::uint64_t relaxations, bool valid) {
  util::Json c = util::Json::object();
  c["graph"] = graph_name;
  c["algorithm"] = algorithm;
  c["seconds"] = seconds;
  c["dijkstra_seconds"] = dijkstra_seconds;
  c["relax_generated"] = relaxations;
  c["valid"] = valid;
  report.add_case(std::move(c));
}

void run_graph(util::Table& table, bench::RunReport& report,
               const GraphUnderTest& g, int ranks) {
  // Root: the first vertex that actually has an edge (vertex 0 can be
  // isolated on scrambled Kronecker graphs).
  const graph::VertexId root =
      g.list.edges.empty() ? 0 : g.list.edges.front().src;

  // Sequential references: Dijkstra and Meyer-Sanders delta-stepping.
  double dijkstra_seconds = 0.0;
  {
    util::Timer timer;
    const auto r = core::dijkstra(g.list, root);
    dijkstra_seconds = timer.seconds();
    (void)r;
  }
  {
    core::SeqDeltaStats stats;
    (void)core::seq_delta_stepping(g.list, root, 0.0, &stats);
    table.row()
        .add(g.name)
        .add("seq delta-stepping")
        .add(stats.seconds, 4)
        .add(dijkstra_seconds, 4)
        .add_si(static_cast<double>(stats.relaxations))
        .add("yes");
    add_case(report, g.name, "seq delta-stepping", stats.seconds,
             dijkstra_seconds, stats.relaxations, true);
  }

  for (const auto algorithm :
       {core::Algorithm::kDeltaStepping, core::Algorithm::kBellmanFord}) {
    simmpi::World world(ranks);
    double seconds = 0.0;
    std::uint64_t relax = 0;
    bool valid = false;
    world.run([&](simmpi::Comm& comm) {
      const graph::DistGraph dg = graph::build_distributed(
          comm, graph::slice_for_rank(g.list, comm.rank(), comm.size()),
          g.list.num_vertices);
      core::SsspStats local;
      comm.barrier();
      util::Timer timer;
      core::SsspResult mine;
      if (algorithm == core::Algorithm::kDeltaStepping) {
        mine = core::delta_stepping(comm, dg, root, {}, &local);
      } else {
        mine = core::bellman_ford(comm, dg, root, {}, &local);
      }
      comm.barrier();
      const double t = comm.allreduce_max(timer.seconds());
      const auto total = comm.allreduce_sum(local.relax_generated);
      const auto verdict = core::validate_sssp(comm, dg, root, mine);
      if (comm.rank() == 0) {
        seconds = t;
        relax = total;
        valid = verdict.ok;
      }
    });
    const std::string algo_name =
        algorithm == core::Algorithm::kDeltaStepping ? "delta-stepping"
                                                     : "bellman-ford";
    table.row()
        .add(g.name)
        .add(algo_name)
        .add(seconds, 4)
        .add(dijkstra_seconds, 4)
        .add_si(static_cast<double>(relax))
        .add(valid ? "yes" : "NO");
    add_case(report, g.name, algo_name, seconds, dijkstra_seconds, relax,
             valid);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int scale = static_cast<int>(options.get_int("scale", 14));

  graph::KroneckerParams params;
  params.scale = scale;

  std::vector<GraphUnderTest> graphs;
  graphs.push_back({"kronecker_s" + std::to_string(scale),
                    graph::kronecker_graph(params)});
  graphs.push_back({"grid_128x128", graph::grid_graph(128, 128, 5)});

  bench::RunReport report("baselines", options);
  util::Table table({"graph", "algorithm", "time (s)", "dijkstra 1-core (s)",
                     "relax generated", "valid"});
  for (const auto& g : graphs) run_graph(table, report, g, ranks);
  table.print(std::cout, "F6: algorithm comparison");
  std::cout << "\nExpected shape: delta-stepping generates less work than "
               "Bellman-Ford on both\ngraphs; the gap is widest on the "
               "large-diameter grid.\n";
  bench::write_report(report, table);
  return 0;
}
